//! The on-disk segment format: checksummed length-prefixed blocks holding
//! run-length + delta-compressed association tables.
//!
//! ```text
//! segment  := magic "PBSG" · version u16 LE · block* · END-block
//! block    := type u8 · len u32 LE · payload[len] · crc32(payload) u32 LE
//! ```
//!
//! Block payloads use the varint/zigzag/delta primitives of
//! [`pebble_nested::encode`]. Association tables are split into
//! per-operator `ASSOC` chunks; an operator may contribute *several*
//! chunks (the streaming writer emits one per captured batch), which the
//! loader concatenates in order. Identifier sequences are delta-encoded;
//! unary tables are additionally run-length encoded — a contiguous
//! `⟨in+k, out+k⟩` range costs a handful of bytes regardless of length
//! (the `StageAssoc::Run` ranges of the columnar path map 1:1 onto run
//! tokens via [`SegmentSink::unary_run`]).
//!
//! The version byte pair is *outside* any checksum on purpose: a reader
//! must be able to reject a future version with a typed error before it
//! trusts anything else about the layout.

use std::sync::Mutex;

use pebble_core::{OperatorProvenance, ProvAssoc};
use pebble_dataflow::{ItemId, OpId, ProvenanceSink};
use pebble_nested::encode::{get_signed, get_u8, get_varint, put_signed, put_varint};

use crate::error::StoreError;

/// Magic bytes every segment starts with.
pub const MAGIC: [u8; 4] = *b"PBSG";
/// Format version this crate writes and reads.
pub const VERSION: u16 = 1;

/// Run metadata: operator count, sink, result row count.
pub const BLOCK_META: u8 = 1;
/// Per-operator output schemas.
pub const BLOCK_SCHEMAS: u8 = 2;
/// Static per-operator provenance (types, inputs, accessed/manipulated
/// paths, read sources, aggregate outputs, association kinds).
pub const BLOCK_OPAUX: u8 = 3;
/// One chunk of one operator's association table.
pub const BLOCK_ASSOC: u8 = 4;
/// Sink result rows (ids + values over an interned string table).
pub const BLOCK_ROWS: u8 = 5;
/// Prepared backtrace index: per-operator sort permutations.
pub const BLOCK_INDEX: u8 = 6;
/// End marker; nothing may follow it.
pub const BLOCK_END: u8 = 7;

// The checksummed block framing is shared with the executor's spill files;
// it lives in `pebble_nested::encode` and is re-exported here so segment
// readers/writers keep their original import paths.
pub use pebble_nested::encode::{crc32, frame_block};

/// Starts a segment byte stream: magic + version.
pub fn segment_header() -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out
}

/// Walks the blocks of a segment, validating framing and checksums.
#[derive(Debug)]
pub struct BlockIter<'a> {
    rest: &'a [u8],
    done: bool,
}

impl<'a> BlockIter<'a> {
    /// Validates the header and positions the iterator at the first block.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, StoreError> {
        if bytes.len() < 4 {
            return Err(StoreError::Truncated("magic".into()));
        }
        if bytes[..4] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        if bytes.len() < 6 {
            return Err(StoreError::Truncated("version".into()));
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != VERSION {
            return Err(StoreError::UnsupportedVersion { found: version });
        }
        Ok(BlockIter {
            rest: &bytes[6..],
            done: false,
        })
    }

    /// The next `(type, payload)` pair, `None` once the END block was
    /// consumed. Trailing bytes after END are an error, as is input that
    /// ends without an END block.
    pub fn next_block(&mut self) -> Result<Option<(u8, &'a [u8])>, StoreError> {
        if self.done {
            return Ok(None);
        }
        let Some((&ty, rest)) = self.rest.split_first() else {
            return Err(StoreError::Truncated("missing end-of-segment block".into()));
        };
        if rest.len() < 4 {
            return Err(StoreError::Truncated("block length".into()));
        }
        let (len_bytes, rest) = rest.split_at(4);
        let len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
        if rest.len() < len + 4 {
            return Err(StoreError::BadLength { block: ty });
        }
        let (payload, rest) = rest.split_at(len);
        let (crc_bytes, rest) = rest.split_at(4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(payload) != stored {
            return Err(StoreError::ChecksumMismatch { block: ty });
        }
        self.rest = rest;
        if ty == BLOCK_END {
            if !payload.is_empty() {
                return Err(StoreError::Corrupt("end block carries a payload".into()));
            }
            if !self.rest.is_empty() {
                return Err(StoreError::Corrupt(
                    "trailing bytes after end-of-segment block".into(),
                ));
            }
            self.done = true;
            return Ok(None);
        }
        Ok(Some((ty, payload)))
    }
}

// ---------------------------------------------------------------------------
// Association chunks
// ---------------------------------------------------------------------------

/// Encodes one chunk of a read table: `oid · tag 0 · ids (delta)`.
pub fn chunk_read(op: OpId, ids: &[ItemId]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(ids.len() + 8);
    put_varint(&mut buf, op as u64);
    buf.push(0);
    pebble_nested::encode::put_ids_delta(&mut buf, ids);
    buf
}

/// Encodes one chunk of a unary table as run-length tokens: maximal
/// `⟨in+k, out+k⟩` ranges become one `len · Δin · Δout` token each.
pub fn chunk_unary(op: OpId, pairs: &[(ItemId, ItemId)]) -> Vec<u8> {
    // Find maximal runs first so the token count can be length-prefixed.
    let mut runs: Vec<(usize, u64)> = Vec::new(); // (start index, len)
    let mut i = 0;
    while i < pairs.len() {
        let mut len = 1u64;
        while i + (len as usize) < pairs.len() {
            let (pi, po) = pairs[i + len as usize - 1];
            let (ni, no) = pairs[i + len as usize];
            if ni == pi.wrapping_add(1) && no == po.wrapping_add(1) {
                len += 1;
            } else {
                break;
            }
        }
        runs.push((i, len));
        i += len as usize;
    }
    let mut buf = Vec::with_capacity(runs.len() * 6 + 8);
    put_varint(&mut buf, op as u64);
    buf.push(1);
    put_varint(&mut buf, runs.len() as u64);
    let (mut prev_in, mut prev_out) = (0u64, 0u64);
    for &(start, len) in &runs {
        let (first_in, first_out) = pairs[start];
        put_varint(&mut buf, len);
        put_signed(&mut buf, first_in.wrapping_sub(prev_in) as i64);
        put_signed(&mut buf, first_out.wrapping_sub(prev_out) as i64);
        prev_in = first_in.wrapping_add(len - 1);
        prev_out = first_out.wrapping_add(len - 1);
    }
    buf
}

/// Encodes a contiguous unary run directly — a single token, no
/// materialized pairs (the shape the columnar executor emits).
pub fn chunk_unary_run(op: OpId, in_first: ItemId, out_first: ItemId, len: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16);
    put_varint(&mut buf, op as u64);
    buf.push(1);
    put_varint(&mut buf, 1);
    put_varint(&mut buf, len);
    put_signed(&mut buf, in_first as i64);
    put_signed(&mut buf, out_first as i64);
    buf
}

/// Encodes one chunk of a binary (join/union) table.
pub fn chunk_binary(op: OpId, triples: &[(Option<ItemId>, Option<ItemId>, ItemId)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(triples.len() * 4 + 8);
    put_varint(&mut buf, op as u64);
    buf.push(2);
    put_varint(&mut buf, triples.len() as u64);
    let (mut prev_l, mut prev_r, mut prev_o) = (0u64, 0u64, 0u64);
    for &(l, r, o) in triples {
        let flags = l.is_some() as u8 | (r.is_some() as u8) << 1;
        buf.push(flags);
        if let Some(l) = l {
            put_signed(&mut buf, l.wrapping_sub(prev_l) as i64);
            prev_l = l;
        }
        if let Some(r) = r {
            put_signed(&mut buf, r.wrapping_sub(prev_r) as i64);
            prev_r = r;
        }
        put_signed(&mut buf, o.wrapping_sub(prev_o) as i64);
        prev_o = o;
    }
    buf
}

/// Encodes one chunk of a flatten table.
pub fn chunk_flatten(op: OpId, triples: &[(ItemId, u32, ItemId)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(triples.len() * 3 + 8);
    put_varint(&mut buf, op as u64);
    buf.push(3);
    put_varint(&mut buf, triples.len() as u64);
    let (mut prev_in, mut prev_out) = (0u64, 0u64);
    for &(i, pos, o) in triples {
        put_signed(&mut buf, i.wrapping_sub(prev_in) as i64);
        put_varint(&mut buf, pos as u64);
        put_signed(&mut buf, o.wrapping_sub(prev_out) as i64);
        prev_in = i;
        prev_out = o;
    }
    buf
}

/// Encodes one chunk of an aggregation table.
pub fn chunk_agg(op: OpId, groups: &[(Vec<ItemId>, ItemId)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(groups.len() * 4 + 8);
    put_varint(&mut buf, op as u64);
    buf.push(4);
    put_varint(&mut buf, groups.len() as u64);
    let mut prev_o = 0u64;
    for (members, o) in groups {
        pebble_nested::encode::put_ids_delta(&mut buf, members);
        put_signed(&mut buf, o.wrapping_sub(prev_o) as i64);
        prev_o = *o;
    }
    buf
}

/// Encodes a whole association table as one chunk (the post-hoc persist
/// path; the streaming sink produces the same data split across chunks).
pub fn chunk_table(op: &OperatorProvenance) -> Vec<u8> {
    match &op.assoc {
        ProvAssoc::Read(ids) => chunk_read(op.oid, ids),
        ProvAssoc::Unary(v) => chunk_unary(op.oid, v),
        ProvAssoc::Binary(v) => chunk_binary(op.oid, v),
        ProvAssoc::Flatten(v) => chunk_flatten(op.oid, v),
        ProvAssoc::Agg(v) => chunk_agg(op.oid, v.as_slice()),
    }
}

/// Decodes one ASSOC chunk payload and appends its entries to the matching
/// operator's table. The table kind was fixed by the OPAUX block; a chunk
/// whose tag disagrees is corrupt.
pub fn apply_chunk(mut payload: &[u8], ops: &mut [OperatorProvenance]) -> Result<(), StoreError> {
    let buf = &mut payload;
    let oid = get_varint(buf)? as usize;
    let op = ops
        .get_mut(oid)
        .ok_or_else(|| StoreError::Corrupt(format!("assoc chunk for unknown operator #{oid}")))?;
    let tag = get_u8(buf)?;
    match (tag, &mut op.assoc) {
        (0, ProvAssoc::Read(ids)) => {
            ids.extend(pebble_nested::encode::get_ids_delta(buf)?);
        }
        (1, ProvAssoc::Unary(pairs)) => {
            let tokens = get_varint(buf)?;
            let (mut prev_in, mut prev_out) = (0u64, 0u64);
            for _ in 0..tokens {
                let len = get_varint(buf)?;
                if len == 0 {
                    return Err(StoreError::Corrupt("empty unary run token".into()));
                }
                if len > (buf.len() as u64 + 2) * (1 << 16) {
                    // A run longer than any plausible table for the
                    // remaining input — reject before allocating.
                    return Err(StoreError::Corrupt("absurd unary run length".into()));
                }
                let first_in = prev_in.wrapping_add(get_signed(buf)? as u64);
                let first_out = prev_out.wrapping_add(get_signed(buf)? as u64);
                for k in 0..len {
                    pairs.push((first_in.wrapping_add(k), first_out.wrapping_add(k)));
                }
                prev_in = first_in.wrapping_add(len - 1);
                prev_out = first_out.wrapping_add(len - 1);
            }
        }
        (2, ProvAssoc::Binary(triples)) => {
            let n = get_varint(buf)? as usize;
            if buf.len() < n {
                return Err(StoreError::Truncated("binary association chunk".into()));
            }
            let (mut prev_l, mut prev_r, mut prev_o) = (0u64, 0u64, 0u64);
            for _ in 0..n {
                let flags = get_u8(buf)?;
                let l = if flags & 1 != 0 {
                    prev_l = prev_l.wrapping_add(get_signed(buf)? as u64);
                    Some(prev_l)
                } else {
                    None
                };
                let r = if flags & 2 != 0 {
                    prev_r = prev_r.wrapping_add(get_signed(buf)? as u64);
                    Some(prev_r)
                } else {
                    None
                };
                prev_o = prev_o.wrapping_add(get_signed(buf)? as u64);
                triples.push((l, r, prev_o));
            }
        }
        (3, ProvAssoc::Flatten(triples)) => {
            let n = get_varint(buf)? as usize;
            if buf.len() < n {
                return Err(StoreError::Truncated("flatten association chunk".into()));
            }
            let (mut prev_in, mut prev_out) = (0u64, 0u64);
            for _ in 0..n {
                prev_in = prev_in.wrapping_add(get_signed(buf)? as u64);
                let pos = get_varint(buf)? as u32;
                prev_out = prev_out.wrapping_add(get_signed(buf)? as u64);
                triples.push((prev_in, pos, prev_out));
            }
        }
        (4, ProvAssoc::Agg(groups)) => {
            let n = get_varint(buf)? as usize;
            if buf.len() < n {
                return Err(StoreError::Truncated(
                    "aggregation association chunk".into(),
                ));
            }
            let mut prev_o = 0u64;
            for _ in 0..n {
                let members = pebble_nested::encode::get_ids_delta(buf)?;
                prev_o = prev_o.wrapping_add(get_signed(buf)? as u64);
                groups.push((members, prev_o));
            }
        }
        (tag @ 0..=4, _) => {
            return Err(StoreError::Corrupt(format!(
                "assoc chunk tag {tag} does not match operator #{oid}'s table kind"
            )));
        }
        (tag, _) => {
            return Err(StoreError::Corrupt(format!(
                "unknown assoc chunk tag {tag}"
            )));
        }
    }
    if !buf.is_empty() {
        return Err(StoreError::Corrupt(format!(
            "trailing bytes in assoc chunk for operator #{oid}"
        )));
    }
    Ok(())
}

/// A [`ProvenanceSink`] that streams association batches into framed
/// `ASSOC` blocks as the run executes — the "CaptureSink flushes segments"
/// path. Batches arrive in deterministic order (the scheduler emits them),
/// so the produced block sequence is reproducible.
///
/// Combine with the in-memory capture via `pebble_core::run_captured_with`;
/// the finished blocks slot between the static blocks written by
/// `ProvStore::persist_parts`.
#[derive(Default)]
pub struct SegmentSink {
    blocks: Mutex<Vec<u8>>,
}

impl SegmentSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The framed `ASSOC` blocks captured so far, draining the sink.
    pub fn into_blocks(self) -> Vec<u8> {
        self.blocks.into_inner().unwrap_or_default()
    }

    fn push(&self, payload: Vec<u8>) {
        let mut blocks = self.blocks.lock().unwrap_or_else(|e| e.into_inner());
        frame_block(&mut blocks, BLOCK_ASSOC, &payload);
    }
}

impl ProvenanceSink for SegmentSink {
    const ENABLED: bool = true;

    fn read_batch(&self, op: OpId, ids: &[ItemId]) {
        self.push(chunk_read(op, ids));
    }

    fn unary_batch(&self, op: OpId, assoc: &[(ItemId, ItemId)]) {
        self.push(chunk_unary(op, assoc));
    }

    fn unary_run(&self, op: OpId, in_first: ItemId, out_first: ItemId, len: u64) {
        self.push(chunk_unary_run(op, in_first, out_first, len));
    }

    fn binary_batch(&self, op: OpId, assoc: &[(Option<ItemId>, Option<ItemId>, ItemId)]) {
        self.push(chunk_binary(op, assoc));
    }

    fn flatten_batch(&self, op: OpId, assoc: &[(ItemId, u32, ItemId)]) {
        self.push(chunk_flatten(op, assoc));
    }

    fn agg_batch(&self, op: OpId, assoc: Vec<(Vec<ItemId>, ItemId)>) {
        self.push(chunk_agg(op, &assoc));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn block_frame_round_trips() {
        let mut out = segment_header();
        frame_block(&mut out, BLOCK_META, &[1, 2, 3]);
        frame_block(&mut out, BLOCK_END, &[]);
        let mut it = BlockIter::parse(&out).unwrap();
        let (ty, payload) = it.next_block().unwrap().unwrap();
        assert_eq!((ty, payload), (BLOCK_META, &[1u8, 2, 3][..]));
        assert!(it.next_block().unwrap().is_none());
        assert!(it.next_block().unwrap().is_none()); // idempotent
    }

    #[test]
    fn framing_rejects_damage() {
        let mut out = segment_header();
        frame_block(&mut out, BLOCK_META, &[9; 16]);
        frame_block(&mut out, BLOCK_END, &[]);

        // Magic.
        let mut bad = out.clone();
        bad[0] ^= 0xff;
        assert_eq!(BlockIter::parse(&bad).unwrap_err(), StoreError::BadMagic);
        // Version.
        let mut bad = out.clone();
        bad[4] = 0x7f;
        assert!(matches!(
            BlockIter::parse(&bad).unwrap_err(),
            StoreError::UnsupportedVersion { found: 0x7f }
        ));
        // Payload bit flip → checksum.
        let mut bad = out.clone();
        bad[6 + 5 + 3] ^= 1;
        let mut it = BlockIter::parse(&bad).unwrap();
        assert_eq!(
            it.next_block().unwrap_err(),
            StoreError::ChecksumMismatch { block: BLOCK_META }
        );
        // Truncation inside the payload.
        let mut it = BlockIter::parse(&out[..16]).unwrap();
        assert!(matches!(
            it.next_block().unwrap_err(),
            StoreError::BadLength { block: BLOCK_META }
        ));
        // Trailing garbage after END.
        let mut bad = out.clone();
        bad.push(0);
        let mut it = BlockIter::parse(&bad).unwrap();
        assert!(it.next_block().is_ok());
        // (BLOCK_META consumed; END then sees a trailing byte.)
        assert!(matches!(it.next_block(), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn unary_rle_compresses_ranges() {
        let op = 0;
        // Two runs: 100..1100 and a lone pair.
        let mut pairs: Vec<(u64, u64)> = (0..1000).map(|k| (100 + k, 5000 + k)).collect();
        pairs.push((9999, 12));
        let chunk = chunk_unary(op, &pairs);
        assert!(chunk.len() < 32, "RLE chunk is {} bytes", chunk.len());
        let mut ops = vec![OperatorProvenance {
            oid: op,
            op_type: "filter".into(),
            inputs: vec![],
            manipulated: None,
            assoc: ProvAssoc::Unary(Vec::new()),
        }];
        apply_chunk(&chunk, &mut ops).unwrap();
        match &ops[0].assoc {
            ProvAssoc::Unary(v) => assert_eq!(*v, pairs),
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn chunks_round_trip_every_kind() {
        let mk = |oid: u32, assoc: ProvAssoc| OperatorProvenance {
            oid,
            op_type: "x".into(),
            inputs: vec![],
            manipulated: None,
            assoc,
        };
        let originals = vec![
            mk(0, ProvAssoc::Read(vec![7, 8, 9, 1 << 48])),
            mk(1, ProvAssoc::Unary(vec![(1, 10), (2, 11), (5, 40)])),
            mk(
                2,
                ProvAssoc::Binary(vec![
                    (Some(1), None, 100),
                    (None, Some(2), 101),
                    (Some(3), Some(4), 102),
                ]),
            ),
            mk(
                3,
                ProvAssoc::Flatten(vec![(1, 1, 50), (1, 2, 51), (2, 1, 52)]),
            ),
            mk(
                4,
                ProvAssoc::Agg(vec![(vec![1, 2, 3], 200), (vec![9], 201), (vec![], 202)]),
            ),
        ];
        let mut blank: Vec<OperatorProvenance> = originals
            .iter()
            .map(|o| {
                let empty = match &o.assoc {
                    ProvAssoc::Read(_) => ProvAssoc::Read(vec![]),
                    ProvAssoc::Unary(_) => ProvAssoc::Unary(vec![]),
                    ProvAssoc::Binary(_) => ProvAssoc::Binary(vec![]),
                    ProvAssoc::Flatten(_) => ProvAssoc::Flatten(vec![]),
                    ProvAssoc::Agg(_) => ProvAssoc::Agg(vec![]),
                };
                OperatorProvenance {
                    oid: o.oid,
                    op_type: o.op_type.clone(),
                    inputs: vec![],
                    manipulated: None,
                    assoc: empty,
                }
            })
            .collect();
        for op in &originals {
            apply_chunk(&chunk_table(op), &mut blank).unwrap();
        }
        for (a, b) in originals.iter().zip(&blank) {
            assert_eq!(a.assoc, b.assoc);
        }
    }

    #[test]
    fn apply_chunk_rejects_mismatched_kind() {
        let chunk = chunk_read(0, &[1, 2]);
        let mut ops = vec![OperatorProvenance {
            oid: 0,
            op_type: "filter".into(),
            inputs: vec![],
            manipulated: None,
            assoc: ProvAssoc::Unary(vec![]),
        }];
        assert!(matches!(
            apply_chunk(&chunk, &mut ops),
            Err(StoreError::Corrupt(_))
        ));
        // Unknown operator.
        let chunk = chunk_read(9, &[1]);
        assert!(matches!(
            apply_chunk(&chunk, &mut ops),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn streaming_sink_equals_posthoc_chunks() {
        let sink = SegmentSink::new();
        sink.unary_batch(2, &[(10, 20), (11, 21)]);
        sink.unary_run(2, 12, 22, 5);
        sink.read_batch(0, &[1, 2, 3]);
        let blocks = sink.into_blocks();
        // Decode the streamed blocks back through the block iterator.
        let mut seg = segment_header();
        seg.extend_from_slice(&blocks);
        frame_block(&mut seg, BLOCK_END, &[]);
        let mut ops = vec![
            OperatorProvenance {
                oid: 0,
                op_type: "read".into(),
                inputs: vec![],
                manipulated: None,
                assoc: ProvAssoc::Read(vec![]),
            },
            OperatorProvenance {
                oid: 1,
                op_type: "x".into(),
                inputs: vec![],
                manipulated: None,
                assoc: ProvAssoc::Unary(vec![]),
            },
            OperatorProvenance {
                oid: 2,
                op_type: "filter".into(),
                inputs: vec![],
                manipulated: None,
                assoc: ProvAssoc::Unary(vec![]),
            },
        ];
        let mut it = BlockIter::parse(&seg).unwrap();
        while let Some((ty, payload)) = it.next_block().unwrap() {
            assert_eq!(ty, BLOCK_ASSOC);
            apply_chunk(payload, &mut ops).unwrap();
        }
        match &ops[2].assoc {
            ProvAssoc::Unary(v) => {
                let expect: Vec<(u64, u64)> = vec![
                    (10, 20),
                    (11, 21),
                    (12, 22),
                    (13, 23),
                    (14, 24),
                    (15, 25),
                    (16, 26),
                ];
                assert_eq!(*v, expect);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        match &ops[0].assoc {
            ProvAssoc::Read(ids) => assert_eq!(*ids, vec![1, 2, 3]),
            other => panic!("wrong kind: {other:?}"),
        }
    }
}
