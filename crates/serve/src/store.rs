//! Persisting a captured run and cold-opening it as a read-only
//! [`ProvStore`].
//!
//! `persist` lowers a [`CapturedRun`] into the segment format of
//! [`crate::segment`]; `ProvStore::from_bytes`/[`ProvStore::open`] load it
//! back without re-running anything. The store implements
//! [`pebble_core::ProvView`], so the *same* backtracing algorithm answers
//! questions from disk as from memory — the in-memory path stays the
//! referee, and every store-backed answer must match it byte for byte.

use std::path::Path as FsPath;

use pebble_core::{
    backtrace_from, Backtrace, BacktraceIndex, CapturedRun, InputProv, OperatorProvenance,
    ProvAssoc, ProvTree, ProvView, SourceProvenance,
};
use pebble_dataflow::{EngineError, ItemId, OpId, Row};
use pebble_nested::encode::{
    get_signed, get_str, get_u8, get_varint, put_signed, put_str, put_varint, StringTable,
};
use pebble_nested::{DataType, Path};

use crate::error::StoreError;
use crate::segment::{
    chunk_table, frame_block, segment_header, BlockIter, BLOCK_ASSOC, BLOCK_END, BLOCK_INDEX,
    BLOCK_META, BLOCK_OPAUX, BLOCK_ROWS, BLOCK_SCHEMAS,
};

/// Association-table kind tag persisted in the OPAUX block, so operators
/// that streamed zero chunks still decode to a correctly-typed empty table.
fn assoc_kind(assoc: &ProvAssoc) -> u8 {
    match assoc {
        ProvAssoc::Read(_) => 0,
        ProvAssoc::Unary(_) => 1,
        ProvAssoc::Binary(_) => 2,
        ProvAssoc::Flatten(_) => 3,
        ProvAssoc::Agg(_) => 4,
    }
}

fn empty_assoc(kind: u8) -> Result<ProvAssoc, StoreError> {
    Ok(match kind {
        0 => ProvAssoc::Read(Vec::new()),
        1 => ProvAssoc::Unary(Vec::new()),
        2 => ProvAssoc::Binary(Vec::new()),
        3 => ProvAssoc::Flatten(Vec::new()),
        4 => ProvAssoc::Agg(Vec::new()),
        other => {
            return Err(StoreError::Corrupt(format!(
                "unknown association kind {other}"
            )))
        }
    })
}

fn put_opt_str(buf: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => buf.push(0),
        Some(s) => {
            buf.push(1);
            put_str(buf, s);
        }
    }
}

fn get_opt_str(buf: &mut &[u8]) -> Result<Option<String>, StoreError> {
    Ok(match get_u8(buf)? {
        0 => None,
        1 => Some(get_str(buf)?),
        other => return Err(StoreError::Corrupt(format!("invalid option tag {other}"))),
    })
}

fn put_paths(buf: &mut Vec<u8>, paths: &[Path]) {
    put_varint(buf, paths.len() as u64);
    for p in paths {
        put_str(buf, &p.to_string());
    }
}

fn get_paths(buf: &mut &[u8]) -> Result<Vec<Path>, StoreError> {
    let n = get_varint(buf)? as usize;
    if buf.len() < n {
        return Err(StoreError::Truncated("path list".into()));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let s = get_str(buf)?;
        out.push(parse_path(&s)?);
    }
    Ok(out)
}

fn parse_path(s: &str) -> Result<Path, StoreError> {
    s.parse()
        .map_err(|e| StoreError::Corrupt(format!("invalid path `{s}`: {e}")))
}

// ---------------------------------------------------------------------------
// Persist
// ---------------------------------------------------------------------------

fn encode_meta(run: &CapturedRun, out: &mut Vec<u8>) {
    let mut payload = Vec::with_capacity(16);
    put_varint(&mut payload, run.ops.len() as u64);
    put_varint(&mut payload, run.program.sink() as u64);
    put_varint(&mut payload, run.output.rows.len() as u64);
    frame_block(out, BLOCK_META, &payload);
}

fn encode_schemas(run: &CapturedRun, out: &mut Vec<u8>) {
    let mut payload = Vec::with_capacity(64 * run.output.op_schemas.len());
    put_varint(&mut payload, run.output.op_schemas.len() as u64);
    for ty in &run.output.op_schemas {
        pebble_nested::encode::put_type(&mut payload, ty);
    }
    frame_block(out, BLOCK_SCHEMAS, &payload);
}

fn encode_opaux(run: &CapturedRun, out: &mut Vec<u8>) {
    let mut payload = Vec::with_capacity(128 * run.ops.len());
    put_varint(&mut payload, run.ops.len() as u64);
    for op in &run.ops {
        put_varint(&mut payload, op.oid as u64);
        put_str(&mut payload, &op.op_type);
        put_varint(&mut payload, op.inputs.len() as u64);
        for input in &op.inputs {
            match input.pred {
                None => payload.push(0),
                Some(p) => {
                    payload.push(1);
                    put_varint(&mut payload, p as u64);
                }
            }
            match &input.accessed {
                None => payload.push(0),
                Some(paths) => {
                    payload.push(1);
                    put_paths(&mut payload, paths);
                }
            }
        }
        match &op.manipulated {
            None => payload.push(0),
            Some(pairs) => {
                payload.push(1);
                put_varint(&mut payload, pairs.len() as u64);
                for (a, b) in pairs {
                    put_str(&mut payload, &a.to_string());
                    put_str(&mut payload, &b.to_string());
                }
            }
        }
        payload.push(assoc_kind(&op.assoc));
        put_opt_str(&mut payload, run.read_source(op.oid).ok().as_deref());
        put_paths(&mut payload, &run.countstar_outputs(op.oid));
    }
    frame_block(out, BLOCK_OPAUX, &payload);
}

fn encode_rows(rows: &[Row], out: &mut Vec<u8>) {
    // Two passes: encode items into a temporary buffer while the string
    // table grows, then emit the finished table ahead of the row bytes.
    let mut table = StringTable::new();
    let mut body = Vec::with_capacity(64 * rows.len());
    put_varint(&mut body, rows.len() as u64);
    let mut prev_id = 0u64;
    for row in rows {
        put_signed(&mut body, row.id.wrapping_sub(prev_id) as i64);
        prev_id = row.id;
        pebble_nested::encode::put_item(&mut body, &mut table, &row.item);
    }
    let mut payload = Vec::with_capacity(body.len() + 256);
    table.encode(&mut payload);
    payload.extend_from_slice(&body);
    frame_block(out, BLOCK_ROWS, &payload);
}

fn encode_index(ops: &[OperatorProvenance], out: &mut Vec<u8>) {
    let mut payload = Vec::new();
    put_varint(&mut payload, ops.len() as u64);
    for op in ops {
        let perm = BacktraceIndex::permutation(op);
        put_varint(&mut payload, perm.len() as u64);
        for p in perm {
            put_varint(&mut payload, p as u64);
        }
    }
    frame_block(out, BLOCK_INDEX, &payload);
}

fn encode_static(run: &CapturedRun, out: &mut Vec<u8>) {
    encode_meta(run, out);
    encode_schemas(run, out);
    encode_opaux(run, out);
}

fn encode_tail(run: &CapturedRun, out: &mut Vec<u8>) {
    encode_rows(&run.output.rows, out);
    encode_index(&run.ops, out);
    frame_block(out, BLOCK_END, &[]);
}

/// Serializes a captured run into segment bytes (post-hoc: association
/// tables are chunked from the in-memory capture, one chunk per operator).
pub fn persist(run: &CapturedRun) -> Vec<u8> {
    let mut out = segment_header();
    encode_static(run, &mut out);
    for op in &run.ops {
        frame_block(&mut out, BLOCK_ASSOC, &chunk_table(op));
    }
    encode_tail(run, &mut out);
    out
}

/// Serializes a captured run around association blocks that were streamed
/// during execution by a [`crate::segment::SegmentSink`] (one chunk per
/// captured batch). Decodes to the same store as [`persist`].
pub fn persist_streamed(run: &CapturedRun, assoc_blocks: &[u8]) -> Vec<u8> {
    let mut out = segment_header();
    encode_static(run, &mut out);
    out.extend_from_slice(assoc_blocks);
    encode_tail(run, &mut out);
    out
}

/// Persists a run to a segment file, returning the byte count written.
pub fn persist_file(run: &CapturedRun, path: &FsPath) -> Result<usize, StoreError> {
    let bytes = persist(run);
    std::fs::write(path, &bytes)?;
    Ok(bytes.len())
}

/// Bytes a naive uncompressed dump of the same run would occupy: fixed
/// 8-byte identifiers for every association column, 4-byte flatten
/// positions, path/schema/source strings, and rows rendered as display
/// text. The `servebench` compression gate compares segment bytes against
/// this.
pub fn naive_dump_bytes(run: &CapturedRun) -> usize {
    let assoc = run.lineage_bytes()
        + run
            .ops
            .iter()
            .map(|o| o.assoc.structural_extra_bytes() + o.path_bytes())
            .sum::<usize>();
    let schemas: usize = run
        .output
        .op_schemas
        .iter()
        .map(|t| format!("{t:?}").len())
        .sum();
    let rows: usize = run
        .output
        .rows
        .iter()
        .map(|r| 8 + format!("{:?}", r.item).len())
        .sum();
    assoc + schemas + rows
}

// ---------------------------------------------------------------------------
// Load
// ---------------------------------------------------------------------------

/// A cold-opened, read-only provenance store: everything the backtracing
/// algorithm and the analysis queries need, decoded from one segment.
pub struct ProvStore {
    sink_op: OpId,
    ops: Vec<OperatorProvenance>,
    schemas: Vec<DataType>,
    read_sources: Vec<Option<String>>,
    countstar: Vec<Vec<Path>>,
    rows: Vec<Row>,
    index: BacktraceIndex,
    on_disk_bytes: usize,
}

struct Pending {
    meta: Option<(usize, OpId, usize)>,
    schemas: Option<Vec<DataType>>,
    ops: Option<Vec<OperatorProvenance>>,
    read_sources: Vec<Option<String>>,
    countstar: Vec<Vec<Path>>,
    rows: Option<Vec<Row>>,
    perms: Option<Vec<Vec<u32>>>,
}

impl ProvStore {
    /// Loads a store from a segment file on disk (the cold-open path).
    pub fn open(path: &FsPath) -> Result<ProvStore, StoreError> {
        let bytes = std::fs::read(path)?;
        ProvStore::from_bytes(&bytes)
    }

    /// Decodes a store from segment bytes, validating framing, checksums,
    /// and structural invariants. Never panics on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<ProvStore, StoreError> {
        let mut it = BlockIter::parse(bytes)?;
        let mut p = Pending {
            meta: None,
            schemas: None,
            ops: None,
            read_sources: Vec::new(),
            countstar: Vec::new(),
            rows: None,
            perms: None,
        };
        while let Some((ty, payload)) = it.next_block()? {
            match ty {
                BLOCK_META => decode_meta(payload, &mut p)?,
                BLOCK_SCHEMAS => decode_schemas(payload, &mut p)?,
                BLOCK_OPAUX => decode_opaux(payload, &mut p)?,
                BLOCK_ASSOC => {
                    let ops = p.ops.as_mut().ok_or_else(|| {
                        StoreError::Corrupt("assoc chunk before operator table".into())
                    })?;
                    crate::segment::apply_chunk(payload, ops)?;
                }
                BLOCK_ROWS => decode_rows(payload, &mut p)?,
                BLOCK_INDEX => decode_index(payload, &mut p)?,
                other => {
                    return Err(StoreError::Corrupt(format!("unknown block type {other}")));
                }
            }
        }
        finish(p, bytes.len())
    }

    /// The sink output rows of the persisted run, in run order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Bytes of the segment this store was loaded from.
    pub fn on_disk_bytes(&self) -> usize {
        self.on_disk_bytes
    }

    /// The decoded operator provenance (for equality checks against the
    /// in-memory referee).
    pub fn ops(&self) -> &[OperatorProvenance] {
        &self.ops
    }

    /// The decoded per-operator schemas.
    pub fn op_schemas(&self) -> &[DataType] {
        &self.schemas
    }

    /// Answers a backtrace against the store using the prepared index —
    /// the same algorithm the in-memory path runs.
    pub fn backtrace(&self, b: Backtrace) -> Result<Vec<SourceProvenance>, EngineError> {
        backtrace_from(self, &self.index, b)
    }

    /// Whole-item backtrace structure for result row `idx`: every path of
    /// the item, marked contributing.
    pub fn whole_item(&self, idx: usize) -> Result<Backtrace, StoreError> {
        let row = self.row(idx)?;
        let paths = Path::path_set(&row.item);
        let tree = ProvTree::from_paths(paths.iter());
        Ok(Backtrace {
            entries: vec![(row.id, tree)],
        })
    }

    /// Backtrace structure for result row `idx` restricted to `paths`.
    pub fn item_with_paths(&self, idx: usize, paths: &[Path]) -> Result<Backtrace, StoreError> {
        let row = self.row(idx)?;
        let tree = ProvTree::from_paths(paths.iter());
        Ok(Backtrace {
            entries: vec![(row.id, tree)],
        })
    }

    fn row(&self, idx: usize) -> Result<&Row, StoreError> {
        self.rows.get(idx).ok_or_else(|| {
            StoreError::BadRequest(format!(
                "row index {idx} out of range ({} result rows)",
                self.rows.len()
            ))
        })
    }
}

impl std::fmt::Debug for ProvStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProvStore")
            .field("sink_op", &self.sink_op)
            .field("ops", &self.ops.len())
            .field("rows", &self.rows.len())
            .field("on_disk_bytes", &self.on_disk_bytes)
            .finish_non_exhaustive()
    }
}

impl ProvView for ProvStore {
    fn sink_op(&self) -> OpId {
        self.sink_op
    }

    fn prov_ops(&self) -> &[OperatorProvenance] {
        &self.ops
    }

    fn schemas(&self) -> &[DataType] {
        &self.schemas
    }

    fn read_source(&self, oid: OpId) -> Result<String, EngineError> {
        self.read_sources
            .get(oid as usize)
            .and_then(Clone::clone)
            .ok_or_else(|| EngineError::BacktraceError(format!("operator #{oid} is not a read")))
    }

    fn countstar_outputs(&self, oid: OpId) -> Vec<Path> {
        self.countstar
            .get(oid as usize)
            .cloned()
            .unwrap_or_default()
    }
}

fn decode_meta(mut payload: &[u8], p: &mut Pending) -> Result<(), StoreError> {
    if p.meta.is_some() {
        return Err(StoreError::Corrupt("duplicate meta block".into()));
    }
    let buf = &mut payload;
    let n_ops = get_varint(buf)? as usize;
    let sink = get_varint(buf)?;
    let n_rows = get_varint(buf)? as usize;
    if sink > u32::MAX as u64 {
        return Err(StoreError::Corrupt("sink operator id out of range".into()));
    }
    p.meta = Some((n_ops, sink as OpId, n_rows));
    Ok(())
}

fn decode_schemas(mut payload: &[u8], p: &mut Pending) -> Result<(), StoreError> {
    if p.schemas.is_some() {
        return Err(StoreError::Corrupt("duplicate schema block".into()));
    }
    let buf = &mut payload;
    let n = get_varint(buf)? as usize;
    if buf.len() < n {
        return Err(StoreError::Truncated("schema block".into()));
    }
    let mut schemas = Vec::with_capacity(n);
    for _ in 0..n {
        schemas.push(pebble_nested::encode::get_type(buf)?);
    }
    p.schemas = Some(schemas);
    Ok(())
}

fn decode_opaux(mut payload: &[u8], p: &mut Pending) -> Result<(), StoreError> {
    if p.ops.is_some() {
        return Err(StoreError::Corrupt("duplicate operator table block".into()));
    }
    let buf = &mut payload;
    let n = get_varint(buf)? as usize;
    if buf.len() < n {
        return Err(StoreError::Truncated("operator table block".into()));
    }
    let mut ops = Vec::with_capacity(n);
    let mut sources = Vec::with_capacity(n);
    let mut countstar = Vec::with_capacity(n);
    for i in 0..n {
        let oid = get_varint(buf)?;
        if oid != i as u64 {
            return Err(StoreError::Corrupt(format!(
                "operator #{oid} stored at position {i}"
            )));
        }
        let op_type = get_str(buf)?;
        let n_inputs = get_varint(buf)? as usize;
        if buf.len() < n_inputs {
            return Err(StoreError::Truncated("operator input list".into()));
        }
        let mut inputs = Vec::with_capacity(n_inputs);
        for _ in 0..n_inputs {
            let pred = match get_u8(buf)? {
                0 => None,
                1 => {
                    let pv = get_varint(buf)?;
                    if pv > u32::MAX as u64 {
                        return Err(StoreError::Corrupt(
                            "predecessor operator id out of range".into(),
                        ));
                    }
                    Some(pv as OpId)
                }
                other => return Err(StoreError::Corrupt(format!("invalid option tag {other}"))),
            };
            let accessed = match get_u8(buf)? {
                0 => None,
                1 => Some(get_paths(buf)?),
                other => return Err(StoreError::Corrupt(format!("invalid option tag {other}"))),
            };
            inputs.push(InputProv { pred, accessed });
        }
        let manipulated = match get_u8(buf)? {
            0 => None,
            1 => {
                let n_pairs = get_varint(buf)? as usize;
                if buf.len() < n_pairs {
                    return Err(StoreError::Truncated("manipulated path list".into()));
                }
                let mut pairs = Vec::with_capacity(n_pairs);
                for _ in 0..n_pairs {
                    let a = get_str(buf)?;
                    let b = get_str(buf)?;
                    pairs.push((parse_path(&a)?, parse_path(&b)?));
                }
                Some(pairs)
            }
            other => return Err(StoreError::Corrupt(format!("invalid option tag {other}"))),
        };
        let kind = get_u8(buf)?;
        let source = get_opt_str(buf)?;
        let cs = get_paths(buf)?;
        ops.push(OperatorProvenance {
            oid: i as OpId,
            op_type,
            inputs,
            manipulated,
            assoc: empty_assoc(kind)?,
        });
        sources.push(source);
        countstar.push(cs);
    }
    p.ops = Some(ops);
    p.read_sources = sources;
    p.countstar = countstar;
    Ok(())
}

fn decode_rows(mut payload: &[u8], p: &mut Pending) -> Result<(), StoreError> {
    if p.rows.is_some() {
        return Err(StoreError::Corrupt("duplicate row block".into()));
    }
    let buf = &mut payload;
    let table = StringTable::decode(buf)?;
    let n = get_varint(buf)? as usize;
    if buf.len() < n {
        return Err(StoreError::Truncated("row block".into()));
    }
    let mut rows = Vec::with_capacity(n);
    let mut prev_id = 0u64;
    for _ in 0..n {
        prev_id = prev_id.wrapping_add(get_signed(buf)? as u64);
        let item = pebble_nested::encode::get_item(buf, &table)?;
        rows.push(Row {
            id: prev_id as ItemId,
            item,
        });
    }
    if !buf.is_empty() {
        return Err(StoreError::Corrupt("trailing bytes in row block".into()));
    }
    p.rows = Some(rows);
    Ok(())
}

fn decode_index(mut payload: &[u8], p: &mut Pending) -> Result<(), StoreError> {
    if p.perms.is_some() {
        return Err(StoreError::Corrupt("duplicate index block".into()));
    }
    let buf = &mut payload;
    let n = get_varint(buf)? as usize;
    if buf.len() < n {
        return Err(StoreError::Truncated("index block".into()));
    }
    let mut perms = Vec::with_capacity(n);
    for _ in 0..n {
        let len = get_varint(buf)? as usize;
        if buf.len() < len {
            return Err(StoreError::Truncated("index permutation".into()));
        }
        let mut perm = Vec::with_capacity(len);
        for _ in 0..len {
            let v = get_varint(buf)?;
            if v > u32::MAX as u64 {
                return Err(StoreError::Corrupt(
                    "index permutation entry out of range".into(),
                ));
            }
            perm.push(v as u32);
        }
        perms.push(perm);
    }
    p.perms = Some(perms);
    Ok(())
}

/// Structural validation + index construction: everything that must hold
/// for the backtracing algorithm to run panic-free over the decoded data.
fn finish(p: Pending, on_disk_bytes: usize) -> Result<ProvStore, StoreError> {
    let (n_ops, sink_op, n_rows) = p
        .meta
        .ok_or_else(|| StoreError::Corrupt("missing meta block".into()))?;
    let schemas = p
        .schemas
        .ok_or_else(|| StoreError::Corrupt("missing schema block".into()))?;
    let ops = p
        .ops
        .ok_or_else(|| StoreError::Corrupt("missing operator table block".into()))?;
    let rows = p
        .rows
        .ok_or_else(|| StoreError::Corrupt("missing row block".into()))?;
    if n_ops == 0 {
        return Err(StoreError::Corrupt("segment has no operators".into()));
    }
    if ops.len() != n_ops {
        return Err(StoreError::Corrupt(format!(
            "operator table has {} entries, meta declares {n_ops}",
            ops.len()
        )));
    }
    if schemas.len() != n_ops {
        return Err(StoreError::Corrupt(format!(
            "schema block has {} entries for {n_ops} operators",
            schemas.len()
        )));
    }
    if rows.len() != n_rows {
        return Err(StoreError::Corrupt(format!(
            "row block has {} rows, meta declares {n_rows}",
            rows.len()
        )));
    }
    if (sink_op as usize) >= n_ops {
        return Err(StoreError::Corrupt(format!(
            "sink operator #{sink_op} out of range for {n_ops} operators"
        )));
    }
    for (i, op) in ops.iter().enumerate() {
        // Backtracing walks `inputs[k].pred` unconditionally for non-read
        // operators; reject anything that would make that walk panic.
        let min_inputs = match &op.assoc {
            ProvAssoc::Read(_) => 0,
            ProvAssoc::Binary(_) => 2,
            _ => 1,
        };
        if op.inputs.len() < min_inputs {
            return Err(StoreError::Corrupt(format!(
                "operator #{i} ({}) has {} inputs, needs at least {min_inputs}",
                op.op_type,
                op.inputs.len()
            )));
        }
        if !matches!(op.assoc, ProvAssoc::Read(_)) {
            for (k, input) in op.inputs.iter().enumerate() {
                let Some(pred) = input.pred else {
                    return Err(StoreError::Corrupt(format!(
                        "operator #{i} input {k} has no predecessor"
                    )));
                };
                if pred as usize >= n_ops {
                    return Err(StoreError::Corrupt(format!(
                        "operator #{i} input {k} references operator #{pred}, \
                         only {n_ops} exist"
                    )));
                }
            }
        }
        if matches!(op.assoc, ProvAssoc::Read(_)) && p.read_sources[i].is_none() {
            return Err(StoreError::Corrupt(format!(
                "read operator #{i} has no source name"
            )));
        }
    }
    let index = match &p.perms {
        Some(perms) => BacktraceIndex::from_sorted(&ops, perms)
            .map_err(|e| StoreError::Corrupt(e.to_string()))?,
        None => BacktraceIndex::build_ops(&ops),
    };
    Ok(ProvStore {
        sink_op,
        ops,
        schemas,
        read_sources: p.read_sources,
        countstar: p.countstar,
        rows,
        index,
        on_disk_bytes,
    })
}
