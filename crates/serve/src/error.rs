//! Typed errors of the persistent store and query service.
//!
//! Like the engine's `EngineError` (PR 4), every failure mode is a typed
//! variant with a pinned, human-readable `Display` — the corruption
//! harness asserts these strings stay stable, and the query service frames
//! errors with them. No code path panics on malformed input.

use std::fmt;

use pebble_dataflow::EngineError;

use crate::segment::VERSION;

/// A failure while persisting, loading, or querying a provenance segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Underlying file or socket I/O failed.
    Io(String),
    /// The input does not start with the segment magic — not a pebble
    /// segment file at all.
    BadMagic,
    /// The segment carries a format version this reader does not speak.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
    },
    /// The input ended inside a header, block frame, or payload.
    Truncated(String),
    /// A block's payload does not match its stored CRC-32.
    ChecksumMismatch {
        /// Block type byte of the damaged block.
        block: u8,
    },
    /// A block's declared length exceeds the remaining input.
    BadLength {
        /// Block type byte of the offending block.
        block: u8,
    },
    /// A block payload decoded to something structurally invalid.
    Corrupt(String),
    /// A query request line the service does not understand.
    BadRequest(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(msg) => write!(f, "store i/o error: {msg}"),
            StoreError::BadMagic => {
                write!(f, "not a pebble segment (bad magic)")
            }
            StoreError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported segment version {found} (this reader speaks version {VERSION})"
                )
            }
            StoreError::Truncated(what) => write!(f, "truncated segment: {what}"),
            StoreError::ChecksumMismatch { block } => {
                write!(f, "checksum mismatch in block type {block}")
            }
            StoreError::BadLength { block } => {
                write!(f, "block type {block} declares a length beyond the input")
            }
            StoreError::Corrupt(msg) => write!(f, "corrupt segment: {msg}"),
            StoreError::BadRequest(msg) => write!(f, "bad request: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

impl From<pebble_nested::encode::CodecError> for StoreError {
    fn from(e: pebble_nested::encode::CodecError) -> Self {
        StoreError::Corrupt(e.0)
    }
}

/// Store failures surface to query clients as [`EngineError`]s, the error
/// type the rest of the system already speaks.
impl From<StoreError> for EngineError {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::BadRequest(msg) => {
                EngineError::BacktraceError(format!("bad request: {msg}"))
            }
            other => EngineError::Internal(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Display contract: exact strings, pinned. Changing any of these
    /// is a breaking change for anything that parses service error frames.
    #[test]
    fn display_strings_are_pinned() {
        let table: Vec<(StoreError, &str)> = vec![
            (
                StoreError::Io("no such file".into()),
                "store i/o error: no such file",
            ),
            (StoreError::BadMagic, "not a pebble segment (bad magic)"),
            (
                StoreError::UnsupportedVersion { found: 9 },
                "unsupported segment version 9 (this reader speaks version 1)",
            ),
            (
                StoreError::Truncated("block header".into()),
                "truncated segment: block header",
            ),
            (
                StoreError::ChecksumMismatch { block: 4 },
                "checksum mismatch in block type 4",
            ),
            (
                StoreError::BadLength { block: 2 },
                "block type 2 declares a length beyond the input",
            ),
            (
                StoreError::Corrupt("string id 7 out of range".into()),
                "corrupt segment: string id 7 out of range",
            ),
            (
                StoreError::BadRequest("unknown verb `FROB`".into()),
                "bad request: unknown verb `FROB`",
            ),
        ];
        for (err, expect) in table {
            assert_eq!(err.to_string(), expect);
        }
    }

    #[test]
    fn engine_error_conversion_is_typed() {
        let e: EngineError = StoreError::BadMagic.into();
        assert!(matches!(e, EngineError::Internal(_)));
        let e: EngineError = StoreError::BadRequest("nope".into()).into();
        assert!(matches!(e, EngineError::BacktraceError(_)));
        assert_eq!(e.to_string(), "backtrace failed: bad request: nope");
    }
}
