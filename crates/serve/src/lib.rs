//! # pebble-serve — persistent provenance store + concurrent query service
//!
//! Everything a captured run needs to outlive its process:
//!
//! * [`mod@segment`] — the versioned on-disk format: checksummed
//!   length-prefixed blocks with run-length + delta encoded association
//!   tables, plus a [`segment::SegmentSink`] that streams blocks during
//!   execution;
//! * [`mod@store`] — [`store::persist`] / [`store::ProvStore`]: lowering a
//!   `CapturedRun` to bytes and cold-opening it as a read-only
//!   [`pebble_core::ProvView`], so the unchanged backtracing algorithm
//!   answers from disk;
//! * [`mod@server`] — a std-only TCP query service (thread-per-connection
//!   on top of the engine `WorkerPool`) streaming
//!   `PROGRESS`/`DATA`/`ERROR`/`DONE` frames for backtrace, heatmap,
//!   audit, why-not, and `STATS` queries, with per-query ids, a lock-free
//!   per-request-type metrics registry, and optional per-query spans;
//! * [`mod@error`] — typed [`error::StoreError`] failures with pinned
//!   `Display` strings, convertible into the engine's `EngineError`.
//!
//! The in-memory path remains the referee: every store-backed answer is
//! required (and tested, via the oracle's store axis) to be byte-identical
//! to the in-memory answer.

#![warn(missing_docs)]

pub mod error;
pub mod segment;
pub mod server;
pub mod store;

pub use error::StoreError;
pub use segment::SegmentSink;
pub use server::{query, query_with_id, ServeConfig, Server};
pub use store::{naive_dump_bytes, persist, persist_file, persist_streamed, ProvStore};
