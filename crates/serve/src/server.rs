//! The concurrent provenance query service.
//!
//! A std-only TCP server over one read-only [`ProvStore`]: a
//! thread-per-connection accept loop reads newline-delimited request
//! lines, evaluates each query as a job on the engine's [`WorkerPool`]
//! (so a panicking query is contained exactly like a panicking morsel,
//! PR 4's contract), and streams the answer back as framed lines:
//!
//! ```text
//! QID <id>                     query id (bookkeeping; first frame)
//! PROGRESS <done>/<total>      deterministic, count-based
//! DATA <json>                  one frame per result element
//! ERROR <EngineError display>  terminal; no DONE follows
//! DONE <n data frames>         terminal
//! ```
//!
//! Requests:
//!
//! ```text
//! BACKTRACE <row>              whole-item backtrace of result row <row>
//! BACKTRACE <row> <p1,p2,..>   …restricted to the given paths
//! PATTERN <tree pattern>       backtrace rows matching a tree pattern
//! HEATMAP <n>                  usage heatmap over the first <n> source items
//! AUDIT                        leaked/influencing attribute audit
//! WHYNOT <path=value,..>       missing-answer explanation (live runs only)
//! STATS                        versioned service-metrics JSON snapshot
//! ```
//!
//! Content frames (everything after `QID`) are fully determined by the
//! store contents and the request — never by timing — so concurrent
//! results can be compared against a serial baseline byte for byte. The
//! `QID` frame is the one timing-dependent line; [`query`] strips it.
//!
//! Every request is tracked in a lock-free [`ServiceMetrics`] registry
//! (per-request-type counts + latency histograms, per-connection request
//! counts, an in-flight gauge) scrapeable via `STATS` without touching the
//! pool's job lock. Completion metrics are recorded *before* the response
//! frames are written, so once a client has seen a terminal frame, a
//! subsequent `STATS` snapshot is guaranteed to include that request —
//! counts reconcile exactly with client-side observations. With
//! `PEBBLE_TRACE` set, each request additionally records a
//! [`SpanKind::Query`] span (`op` = request-kind ordinal, `task` = query
//! id) exported through the usual NDJSON / chrome://tracing pipeline at
//! shutdown.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

use pebble_core::whynot::{parse_whynot_query, why_not};
use pebble_core::{canonical_provenance, AuditReport, CapturedRun, Heatmap, TreePattern};
use pebble_dataflow::{panic_message, Context, EngineError, WorkerPool};
use pebble_nested::Path;
use pebble_obs::{
    diag, json_escape, metrics_enabled, DurationSummary, ObsConfig, PoolGauges, RequestKind,
    ServeStats, ServiceMetrics, ServiceSnapshot, SpanEvent, SpanKind, TraceCollector,
};

use crate::error::StoreError;
use crate::store::ProvStore;

/// Configuration of the query service.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`PEBBLE_SERVE_ADDR`, default `127.0.0.1:0` — an
    /// ephemeral port reported by [`Server::local_addr`]).
    pub addr: String,
    /// Query worker threads (`PEBBLE_SERVE_WORKERS`, default 4, clamped
    /// to 1..=64 with a one-line warning).
    pub workers: usize,
    /// Enables the test-only `PANIC` request that deliberately panics a
    /// query job, for exercising panic containment. Never read from the
    /// environment.
    pub debug_panic: bool,
    /// Span export path (`PEBBLE_TRACE` by default). When set, every
    /// request records a query span and the trace is exported on
    /// shutdown.
    pub trace_path: Option<String>,
}

/// Hard ceiling on query workers; more threads than this never helps a
/// single store and usually signals a typo in the knob.
const MAX_SERVE_WORKERS: usize = 64;

impl Default for ServeConfig {
    fn default() -> Self {
        let addr = std::env::var("PEBBLE_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:0".to_string());
        let mut workers = match std::env::var("PEBBLE_SERVE_WORKERS") {
            Err(_) => 4,
            Ok(raw) => match raw.trim().parse::<i64>() {
                Ok(v) if v > 0 => v as usize,
                _ => {
                    diag::warn_once(
                        "PEBBLE_SERVE_WORKERS",
                        &format!(
                            "ignoring invalid PEBBLE_SERVE_WORKERS={raw:?}: expected a \
                             positive integer, using default"
                        ),
                    );
                    4
                }
            },
        };
        if workers > MAX_SERVE_WORKERS {
            diag::warn_once(
                "PEBBLE_SERVE_WORKERS.clamp",
                &format!("clamping PEBBLE_SERVE_WORKERS={workers} to {MAX_SERVE_WORKERS}"),
            );
            workers = MAX_SERVE_WORKERS;
        }
        ServeConfig {
            addr,
            workers,
            debug_panic: false,
            trace_path: ObsConfig::from_env().trace_path,
        }
    }
}

/// A captured run (plus its source datasets) attached to a serving store,
/// enabling queries that need more than the persisted associations —
/// today `WHYNOT`, which maps conditions backward through the live
/// program.
struct LiveRun {
    run: CapturedRun,
    ctx: Context,
}

/// Everything a connection thread needs, bundled once.
struct Inner {
    store: Arc<ProvStore>,
    live: Option<LiveRun>,
    pool: Arc<WorkerPool>,
    metrics: ServiceMetrics,
    trace: Option<TraceCollector>,
    start: Instant,
    next_qid: AtomicU64,
    debug_panic: bool,
}

/// A running query service. Dropping the server shuts it down.
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    inner: Arc<Inner>,
    trace_path: Option<String>,
}

impl Server {
    /// Binds and starts serving `store` in background threads.
    pub fn start(store: Arc<ProvStore>, cfg: &ServeConfig) -> Result<Server, StoreError> {
        Server::start_with(store, None, cfg)
    }

    /// Like [`Server::start`], but additionally attaches the live
    /// captured run (and its source context) the store was persisted
    /// from, enabling `WHYNOT` queries. Store-only servers answer
    /// `WHYNOT` with a typed `ERROR` frame.
    pub fn start_live(
        store: Arc<ProvStore>,
        run: CapturedRun,
        ctx: Context,
        cfg: &ServeConfig,
    ) -> Result<Server, StoreError> {
        Server::start_with(store, Some(LiveRun { run, ctx }), cfg)
    }

    fn start_with(
        store: Arc<ProvStore>,
        live: Option<LiveRun>,
        cfg: &ServeConfig,
    ) -> Result<Server, StoreError> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let inner = Arc::new(Inner {
            store,
            live,
            pool: WorkerPool::with_workers(cfg.workers.max(1)),
            metrics: ServiceMetrics::new(),
            trace: cfg
                .trace_path
                .as_ref()
                .map(|_| TraceCollector::new(cfg.workers.max(1) + 1)),
            start: Instant::now(),
            next_qid: AtomicU64::new(1),
            debug_panic: cfg.debug_panic,
        });

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    inner.metrics.connection_opened();
                    let inner = Arc::clone(&inner);
                    std::thread::spawn(move || {
                        serve_connection(stream, inner);
                    });
                }
            })
        };
        Ok(Server {
            local_addr,
            shutdown,
            accept: Some(accept),
            inner,
            trace_path: cfg.trace_path.clone(),
        })
    }

    /// The address the service actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Point-in-time service counters (the `serve` report section),
    /// folded down from the per-request-type registry.
    pub fn stats(&self) -> ServeStats {
        let s = self.inner.metrics.snapshot();
        let latency = s.total_latency();
        ServeStats {
            connections: s.connections_opened,
            queries: s.total_started(),
            errors: s.total_errors(),
            panics_contained: s.panics_contained,
            frames_sent: s.total_frames(),
            query_durations: (latency.count > 0).then(|| DurationSummary::from_snapshot(&latency)),
        }
    }

    /// Full per-request-type snapshot of the service registry (the same
    /// data the `STATS` wire command renders).
    pub fn service_snapshot(&self) -> ServiceSnapshot {
        self.inner.metrics.snapshot()
    }

    /// Stops accepting connections and joins the accept thread. In-flight
    /// connections finish their current query. Recorded query spans are
    /// exported on the first shutdown.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Relaxed) {
            return;
        }
        // Unblock the accept loop with a throwaway connection. The bound
        // address may be unspecified (`0.0.0.0` / `::`), which is not a
        // connectable destination on every platform — connecting to it can
        // fail, leaving `accept` blocked and `join` hung forever. Always
        // dial the loopback of the same family on the bound port, and fall
        // back to the bound address itself for the (pathological) case of a
        // loopback-filtered listener.
        let port = self.local_addr.port();
        let loopback: SocketAddr = if self.local_addr.is_ipv4() {
            (std::net::Ipv4Addr::LOCALHOST, port).into()
        } else {
            (std::net::Ipv6Addr::LOCALHOST, port).into()
        };
        if TcpStream::connect(loopback).is_err() {
            let _ = TcpStream::connect(self.local_addr);
        }
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let (Some(trace), Some(path)) = (&self.inner.trace, &self.trace_path) {
            let spans = trace.drain_sorted();
            if !spans.is_empty() {
                if let Err(e) = pebble_obs::span::export(path, &spans) {
                    diag::warn_once(
                        "serve.trace_export",
                        &format!("failed to export service trace to {path}: {e}"),
                    );
                }
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(stream: TcpStream, inner: Arc<Inner>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    let mut served = 0u64;
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let request = line.trim().to_string();
        if request.is_empty() {
            continue;
        }
        served += 1;
        let kind = RequestKind::from_request(&request);
        let qid = inner.next_qid.fetch_add(1, Relaxed);
        inner.metrics.begin(kind);
        // The latency clock only runs when someone will consume it
        // (metrics or tracing); the metrics-off serve path stays free of
        // timestamp reads.
        let span_start_ns = inner
            .trace
            .as_ref()
            .map(|_| inner.start.elapsed().as_nanos() as u64);
        let timer = (metrics_enabled() || inner.trace.is_some()).then(Instant::now);
        // Evaluate on the pool so a panicking query is contained there and
        // the connection (and server) survive to report it as a frame.
        let (tx, rx) = mpsc::channel::<std::thread::Result<Vec<String>>>();
        {
            let inner = Arc::clone(&inner);
            let request = request.clone();
            inner.pool.clone().submit_job(
                move || answer(&inner, &request),
                move |result| {
                    let _ = tx.send(result);
                },
            );
        }
        let frames = match rx.recv() {
            Ok(Ok(frames)) => frames,
            Ok(Err(payload)) => {
                inner.metrics.panics_contained.fetch_add(1, Relaxed);
                let err = EngineError::WorkerPanic {
                    payload: panic_message(payload.as_ref()),
                };
                vec![format!("ERROR {err}")]
            }
            Err(_) => vec![format!(
                "ERROR {}",
                EngineError::Internal("query job was dropped without a result".into())
            )],
        };
        let error = frames.last().is_some_and(|f| f.starts_with("ERROR "));
        let dur_ns = timer.map(|t| t.elapsed().as_nanos() as u64);
        if let (Some(trace), Some(start_ns)) = (&inner.trace, span_start_ns) {
            trace.record(SpanEvent {
                kind: SpanKind::Query,
                name: kind.name(),
                op: kind.idx() as u32,
                phase: 0,
                task: qid as u32,
                worker: 0,
                start_ns,
                dur_ns: dur_ns.unwrap_or(0),
                rows: frames.len() as u64,
            });
        }
        // Completion is recorded BEFORE the frames are written: a client
        // that has seen this request's terminal frame is guaranteed a
        // later STATS snapshot counts it — exact reconciliation.
        inner.metrics.finish(
            kind,
            error,
            frames.len() as u64,
            metrics_enabled().then(|| dur_ns.unwrap_or(0)),
        );
        let mut broken = writer.write_all(format!("QID {qid}\n").as_bytes()).is_err();
        for frame in &frames {
            if broken {
                break;
            }
            broken = writer
                .write_all(frame.as_bytes())
                .and_then(|_| writer.write_all(b"\n"))
                .is_err();
        }
        if broken || writer.flush().is_err() {
            break;
        }
    }
    inner.metrics.connection_closed(served);
}

/// Computes the full frame sequence for one request line. Runs inside a
/// pool job; panics are contained by the caller.
fn answer(inner: &Inner, request: &str) -> Vec<String> {
    let start = metrics_enabled().then(Instant::now);
    let frames = match evaluate(inner, request) {
        Ok(frames) => frames,
        Err(e) => vec![format!("ERROR {}", EngineError::from(e))],
    };
    if let Some(start) = start {
        pebble_obs::global()
            .serve_query_ns
            .record(start.elapsed().as_nanos() as u64);
    }
    frames
}

fn evaluate(inner: &Inner, request: &str) -> Result<Vec<String>, StoreError> {
    let store = inner.store.as_ref();
    let (verb, rest) = match request.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (request, ""),
    };
    match verb {
        "BACKTRACE" => {
            let mut parts = rest.split_whitespace();
            let idx: usize = parts
                .next()
                .ok_or_else(|| StoreError::BadRequest("BACKTRACE needs a row index".into()))?
                .parse()
                .map_err(|_| StoreError::BadRequest(format!("invalid row index in `{request}`")))?;
            let b = match parts.next() {
                None => store.whole_item(idx)?,
                Some(list) => {
                    let mut paths = Vec::new();
                    for s in list.split(',').filter(|s| !s.is_empty()) {
                        let p: Path = s.parse().map_err(|e| {
                            StoreError::BadRequest(format!("invalid path `{s}`: {e}"))
                        })?;
                        paths.push(p);
                    }
                    store.item_with_paths(idx, &paths)?
                }
            };
            if let Some(extra) = parts.next() {
                return Err(StoreError::BadRequest(format!(
                    "unexpected argument `{extra}`"
                )));
            }
            backtrace_frames(store, b)
        }
        "PATTERN" => {
            if rest.is_empty() {
                return Err(StoreError::BadRequest("PATTERN needs a pattern".into()));
            }
            let pattern = TreePattern::parse(rest)
                .map_err(|e| StoreError::BadRequest(format!("invalid pattern: {e}")))?;
            let b = pattern.match_rows(store.rows());
            backtrace_frames(store, b)
        }
        "HEATMAP" => {
            let n: usize = rest.parse().map_err(|_| {
                StoreError::BadRequest(format!("invalid item count in `{request}`"))
            })?;
            heatmap_frames(store, n)
        }
        "AUDIT" => {
            if !rest.is_empty() {
                return Err(StoreError::BadRequest(format!(
                    "unexpected argument `{rest}`"
                )));
            }
            audit_frames(store)
        }
        "WHYNOT" => {
            let Some(live) = &inner.live else {
                return Err(StoreError::BadRequest(
                    "WHYNOT requires a live captured run (serve with start_live)".into(),
                ));
            };
            if rest.is_empty() {
                return Err(StoreError::BadRequest(
                    "WHYNOT needs conditions `path=value[, path=value]`".into(),
                ));
            }
            let conds = parse_whynot_query(rest)
                .map_err(|e| StoreError::BadRequest(format!("invalid WHYNOT query: {e}")))?;
            let answer = why_not(&live.run, &live.ctx, &conds)
                .map_err(|e| StoreError::BadRequest(e.to_string()))?;
            let lines = answer.render(&live.run);
            let mut frames = Vec::with_capacity(lines.len() + 2);
            frames.push(format!("PROGRESS 0/{}", lines.len()));
            for l in &lines {
                frames.push(format!("DATA {{\"line\": \"{}\"}}", json_escape(l)));
            }
            frames.push(format!("DONE {}", lines.len()));
            Ok(frames)
        }
        "STATS" => {
            if !rest.is_empty() {
                return Err(StoreError::BadRequest(format!(
                    "unexpected argument `{rest}`"
                )));
            }
            let gauges = PoolGauges {
                workers: inner.pool.size() as u64,
                queue_depth: inner.pool.queue_depth(),
                active: inner.pool.active_workers(),
            };
            let json = inner.metrics.snapshot().to_stats_json(&gauges);
            Ok(vec![format!("DATA {json}"), "DONE 1".to_string()])
        }
        "PANIC" if inner.debug_panic => panic!("debug panic requested by client"),
        other => Err(StoreError::BadRequest(format!("unknown verb `{other}`"))),
    }
}

fn backtrace_frames(
    store: &ProvStore,
    b: pebble_core::Backtrace,
) -> Result<Vec<String>, StoreError> {
    let sources = store
        .backtrace(b)
        .map_err(|e| StoreError::Corrupt(e.to_string()))?;
    let triples = canonical_provenance(&sources);
    let mut frames = Vec::with_capacity(triples.len() + 2);
    frames.push(format!("PROGRESS 0/{}", triples.len()));
    for (source, index, tree) in &triples {
        frames.push(format!(
            "DATA {{\"source\": \"{}\", \"index\": {index}, \"tree\": \"{}\"}}",
            json_escape(source),
            json_escape(tree),
        ));
    }
    frames.push(format!("DONE {}", triples.len()));
    Ok(frames)
}

/// Backtraces every result row and folds the provenance into `f`, pushing
/// count-based `PROGRESS` frames at each completed quarter.
fn fold_rows(
    store: &ProvStore,
    frames: &mut Vec<String>,
    mut f: impl FnMut(&pebble_core::SourceProvenance),
) -> Result<(), StoreError> {
    let total = store.rows().len();
    let step = (total / 4).max(1);
    for idx in 0..total {
        let b = store.whole_item(idx)?;
        let sources = store
            .backtrace(b)
            .map_err(|e| StoreError::Corrupt(e.to_string()))?;
        for source in &sources {
            f(source);
        }
        let done = idx + 1;
        if done % step == 0 || done == total {
            frames.push(format!("PROGRESS {done}/{total}"));
        }
    }
    if total == 0 {
        frames.push("PROGRESS 0/0".to_string());
    }
    Ok(())
}

fn heatmap_frames(store: &ProvStore, n: usize) -> Result<Vec<String>, StoreError> {
    let mut frames = Vec::new();
    let mut heatmap = Heatmap::new();
    fold_rows(store, &mut frames, |source| heatmap.absorb(source))?;
    let attributes = heatmap.attributes.clone();
    frames.push(format!(
        "DATA {{\"heatmap\": \"{}\"}}",
        json_escape(&heatmap.render(n, &attributes))
    ));
    let cold: Vec<String> = heatmap
        .cold_attributes(&attributes)
        .into_iter()
        .map(|a| format!("\"{}\"", json_escape(a)))
        .collect();
    frames.push(format!(
        "DATA {{\"cold_attributes\": [{}], \"cold_items\": {}}}",
        cold.join(", "),
        heatmap.cold_items(n).len()
    ));
    frames.push("DONE 2".to_string());
    Ok(frames)
}

fn audit_frames(store: &ProvStore) -> Result<Vec<String>, StoreError> {
    let mut frames = Vec::new();
    let mut report = AuditReport::default();
    fold_rows(store, &mut frames, |source| {
        report.merge(AuditReport::from_provenance(source))
    })?;
    let mut data = 0usize;
    for (index, paths) in &report.leaked {
        let mut rendered: Vec<String> = paths.iter().map(|p| p.to_string()).collect();
        rendered.sort();
        rendered.dedup();
        let quoted: Vec<String> = rendered
            .iter()
            .map(|p| format!("\"{}\"", json_escape(p)))
            .collect();
        frames.push(format!(
            "DATA {{\"index\": {index}, \"leaked\": [{}]}}",
            quoted.join(", ")
        ));
        data += 1;
    }
    frames.push(format!("DONE {data}"));
    Ok(frames)
}

/// Blocking client helper: connects, sends one request line, and returns
/// all content frames up to and including the terminal `DONE`/`ERROR`.
/// The bookkeeping `QID` frame is stripped, so the result is byte-
/// comparable across serial and concurrent runs; use [`query_with_id`] to
/// keep the id.
pub fn query(addr: impl ToSocketAddrs, request: &str) -> std::io::Result<Vec<String>> {
    query_with_id(addr, request).map(|(_, frames)| frames)
}

/// Like [`query`], but also returns the query id the server assigned
/// (`None` only when talking to a pre-QID server).
pub fn query_with_id(
    addr: impl ToSocketAddrs,
    request: &str,
) -> std::io::Result<(Option<u64>, Vec<String>)> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    writer.write_all(request.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let reader = BufReader::new(stream);
    let mut qid = None;
    let mut frames = Vec::new();
    for line in reader.lines() {
        let line = line?;
        if frames.is_empty() && qid.is_none() {
            if let Some(id) = line.strip_prefix("QID ") {
                qid = id.trim().parse::<u64>().ok();
                continue;
            }
        }
        let terminal = line.starts_with("DONE ") || line.starts_with("ERROR ");
        frames.push(line);
        if terminal {
            break;
        }
    }
    Ok((qid, frames))
}
