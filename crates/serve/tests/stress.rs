//! Concurrency stress: many client threads issuing an interleaved mix of
//! every request type against one server must each observe exactly the
//! frames a serial client observes, the server's `STATS` accounting must
//! reconcile *exactly* with what the clients counted, and a panicking
//! query must not take down the server or any other client's query.

use std::sync::Arc;

use pebble_core::run_captured;
use pebble_dataflow::{Context, ExecConfig};
use pebble_nested::{json, DataItem, Value};
use pebble_obs::RequestKind;
use pebble_serve::{persist, query, ProvStore, ServeConfig, Server};
use pebble_workloads::{dblp_context, dblp_scenarios};

const CLIENTS: usize = 32;

fn build_live() -> (Arc<ProvStore>, pebble_core::CapturedRun, Context) {
    let ctx = dblp_context(200);
    for scenario in dblp_scenarios() {
        let run = run_captured(
            &scenario.program,
            &ctx,
            ExecConfig::with_partitions(2).workers(2),
        )
        .unwrap();
        if !run.output.rows.is_empty() {
            let store = Arc::new(ProvStore::from_bytes(&persist(&run)).unwrap());
            return (store, run, ctx);
        }
    }
    panic!("no DBLP scenario produced result rows at 200 records");
}

fn build_store() -> Arc<ProvStore> {
    build_live().0
}

/// One query of every request type, plus a typed error.
fn query_mix(store: &ProvStore) -> Vec<String> {
    let n = store.rows().len();
    assert!(n > 0, "stress scenario produced no rows");
    let label = store
        .rows()
        .first()
        .and_then(|r| r.item.fields().next())
        .map(|(l, _)| l.to_string())
        .expect("first row has no fields");
    let mut mix = vec![
        "HEATMAP 10".to_string(),
        "AUDIT".to_string(),
        format!("PATTERN //{label}"),
        format!("WHYNOT {label}=\"__stress_missing__\""),
        "BACKTRACE 999999".to_string(), // typed error, same for everyone
    ];
    for idx in (0..n).step_by((n / 6).max(1)) {
        mix.push(format!("BACKTRACE {idx}"));
    }
    mix
}

/// `requests.<kind>.<field>` from a parsed `STATS` document.
fn kind_field(doc: &DataItem, kind: RequestKind, field: &str) -> i64 {
    let Some(Value::Item(requests)) = doc.get("requests") else {
        panic!("STATS document has no requests object");
    };
    let Some(Value::Item(section)) = requests.get(kind.name()) else {
        panic!("STATS requests has no `{}` section", kind.name());
    };
    section
        .get(field)
        .and_then(Value::as_int)
        .unwrap_or_else(|| panic!("requests.{}.{field} missing", kind.name()))
}

fn stats_doc(addr: std::net::SocketAddr) -> DataItem {
    let frames = query(addr, "STATS").unwrap();
    let payload = frames
        .iter()
        .find_map(|f| f.strip_prefix("DATA "))
        .unwrap_or_else(|| panic!("STATS returned no DATA frame: {frames:?}"));
    match json::parse(payload) {
        Ok(Value::Item(d)) => d,
        other => panic!("STATS payload is not a JSON object: {other:?}"),
    }
}

#[test]
fn concurrent_clients_match_serial_baseline() {
    let (store, run, ctx) = build_live();
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        debug_panic: false,
        trace_path: None,
    };
    let mut server = Server::start_live(Arc::clone(&store), run, ctx, &cfg).unwrap();
    let addr = server.local_addr();
    let mix = query_mix(&store);

    // Serial baseline, one connection per query.
    let baseline: Vec<Vec<String>> = mix.iter().map(|q| query(addr, q).unwrap()).collect();

    // Every client walks the mix from a different starting offset so the
    // in-flight query set is genuinely interleaved.
    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let mix = mix.clone();
            let baseline = baseline.clone();
            std::thread::spawn(move || {
                for round in 0..mix.len() {
                    let i = (client + round) % mix.len();
                    let frames = query(addr, &mix[i]).unwrap();
                    assert_eq!(
                        frames, baseline[i],
                        "client {client} round {round} diverged on `{}`",
                        mix[i]
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let stats = server.stats();
    let expected = (CLIENTS + 1) * mix.len();
    assert_eq!(stats.queries, expected as u64);
    assert_eq!(stats.panics_contained, 0);

    // Exact per-type reconciliation: the server's STATS counters must
    // equal what the clients themselves issued and observed — every
    // request classified, none lost, none double-counted.
    let passes = (CLIENTS + 1) as i64;
    let doc = stats_doc(addr);
    for kind in [
        RequestKind::Backtrace,
        RequestKind::Pattern,
        RequestKind::Heatmap,
        RequestKind::Audit,
        RequestKind::WhyNot,
    ] {
        let sent = mix
            .iter()
            .filter(|q| RequestKind::from_request(q) == kind)
            .count() as i64;
        let errored = mix
            .iter()
            .enumerate()
            .filter(|(i, q)| {
                RequestKind::from_request(q) == kind
                    && baseline[*i].last().is_some_and(|f| f.starts_with("ERROR "))
            })
            .count() as i64;
        assert_eq!(
            kind_field(&doc, kind, "completed"),
            sent * passes,
            "completed count for `{}` does not reconcile",
            kind.name()
        );
        assert_eq!(
            kind_field(&doc, kind, "errors"),
            errored * passes,
            "error count for `{}` does not reconcile",
            kind.name()
        );
        assert_eq!(
            kind_field(&doc, kind, "started"),
            sent * passes,
            "started count for `{}` does not reconcile",
            kind.name()
        );
    }
    // No client sent an unclassifiable request; the STATS request itself
    // is in flight while its own snapshot is taken.
    assert_eq!(kind_field(&doc, RequestKind::Other, "started"), 0);
    assert_eq!(kind_field(&doc, RequestKind::Stats, "started"), 1);
    assert_eq!(kind_field(&doc, RequestKind::Stats, "completed"), 0);

    server.shutdown();
}

#[test]
fn panicking_query_is_contained() {
    let store = build_store();
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        debug_panic: true,
        trace_path: None,
    };
    let mut server = Server::start(Arc::clone(&store), &cfg).unwrap();
    let addr = server.local_addr();

    let before = query(addr, "BACKTRACE 0").unwrap();

    // Panics race against normal queries; every client must still get a
    // well-formed answer.
    let handles: Vec<_> = (0..8)
        .map(|client| {
            let before = before.clone();
            std::thread::spawn(move || {
                for round in 0..4 {
                    if (client + round) % 2 == 0 {
                        let frames = query(addr, "PANIC").unwrap();
                        assert_eq!(
                            frames,
                            vec!["ERROR worker panicked: debug panic requested by client"
                                .to_string()]
                        );
                    } else {
                        assert_eq!(query(addr, "BACKTRACE 0").unwrap(), before);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // The server survived and still answers.
    assert_eq!(query(addr, "BACKTRACE 0").unwrap(), before);
    let stats = server.stats();
    assert_eq!(stats.panics_contained, 16);
    assert_eq!(stats.errors, 16);

    // The contained panics are visible in STATS too: PANIC is an
    // unclassified verb, so all 16 land on the `other` kind as errors.
    let doc = stats_doc(addr);
    assert_eq!(kind_field(&doc, RequestKind::Other, "completed"), 16);
    assert_eq!(kind_field(&doc, RequestKind::Other, "errors"), 16);
    assert!(doc.get("panics_contained").and_then(Value::as_int) == Some(16));

    server.shutdown();
}
