//! Concurrency stress: many client threads issuing interleaved backtrace
//! and heatmap queries against one server must each observe exactly the
//! frames a serial client observes, and a panicking query must not take
//! down the server or any other client's query.

use std::sync::Arc;

use pebble_core::run_captured;
use pebble_dataflow::ExecConfig;
use pebble_serve::{persist, query, ProvStore, ServeConfig, Server};
use pebble_workloads::{dblp_context, dblp_scenarios};

const CLIENTS: usize = 32;

fn build_store() -> Arc<ProvStore> {
    let ctx = dblp_context(200);
    for scenario in dblp_scenarios() {
        let run = run_captured(
            &scenario.program,
            &ctx,
            ExecConfig::with_partitions(2).workers(2),
        )
        .unwrap();
        if !run.output.rows.is_empty() {
            return Arc::new(ProvStore::from_bytes(&persist(&run)).unwrap());
        }
    }
    panic!("no DBLP scenario produced result rows at 200 records");
}

fn query_mix(store: &ProvStore) -> Vec<String> {
    let n = store.rows().len();
    assert!(n > 0, "stress scenario produced no rows");
    let mut mix = vec![
        "HEATMAP 10".to_string(),
        "AUDIT".to_string(),
        "BACKTRACE 999999".to_string(), // typed error, same for everyone
    ];
    for idx in (0..n).step_by((n / 6).max(1)) {
        mix.push(format!("BACKTRACE {idx}"));
    }
    mix
}

#[test]
fn concurrent_clients_match_serial_baseline() {
    let store = build_store();
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        debug_panic: false,
    };
    let mut server = Server::start(Arc::clone(&store), &cfg).unwrap();
    let addr = server.local_addr();
    let mix = query_mix(&store);

    // Serial baseline, one connection per query.
    let baseline: Vec<Vec<String>> = mix.iter().map(|q| query(addr, q).unwrap()).collect();

    // Every client walks the mix from a different starting offset so the
    // in-flight query set is genuinely interleaved.
    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let mix = mix.clone();
            let baseline = baseline.clone();
            std::thread::spawn(move || {
                for round in 0..mix.len() {
                    let i = (client + round) % mix.len();
                    let frames = query(addr, &mix[i]).unwrap();
                    assert_eq!(
                        frames, baseline[i],
                        "client {client} round {round} diverged on `{}`",
                        mix[i]
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let stats = server.stats();
    let expected = (CLIENTS + 1) * mix.len();
    assert_eq!(stats.queries, expected as u64);
    assert_eq!(stats.panics_contained, 0);
    server.shutdown();
}

#[test]
fn panicking_query_is_contained() {
    let store = build_store();
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        debug_panic: true,
    };
    let mut server = Server::start(Arc::clone(&store), &cfg).unwrap();
    let addr = server.local_addr();

    let before = query(addr, "BACKTRACE 0").unwrap();

    // Panics race against normal queries; every client must still get a
    // well-formed answer.
    let handles: Vec<_> = (0..8)
        .map(|client| {
            let before = before.clone();
            std::thread::spawn(move || {
                for round in 0..4 {
                    if (client + round) % 2 == 0 {
                        let frames = query(addr, "PANIC").unwrap();
                        assert_eq!(
                            frames,
                            vec!["ERROR worker panicked: debug panic requested by client"
                                .to_string()]
                        );
                    } else {
                        assert_eq!(query(addr, "BACKTRACE 0").unwrap(), before);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // The server survived and still answers.
    assert_eq!(query(addr, "BACKTRACE 0").unwrap(), before);
    let stats = server.stats();
    assert_eq!(stats.panics_contained, 16);
    assert_eq!(stats.errors, 16);
    server.shutdown();
}
