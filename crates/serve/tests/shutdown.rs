//! Shutdown regression: a server bound to the unspecified address
//! (`0.0.0.0:0`) must still shut down promptly.
//!
//! `Server::shutdown` unblocks the accept loop with a throwaway
//! connection; it used to dial `local_addr` verbatim, and connecting to
//! `0.0.0.0` is platform-dependent — where the connect fails, the accept
//! thread never wakes and `handle.join()` blocks forever. The fix dials
//! loopback on the bound port. Each test runs under a watchdog so a
//! regression fails in seconds instead of hanging the suite.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use pebble_core::run_captured;
use pebble_dataflow::ExecConfig;
use pebble_serve::{persist, query, ProvStore, ServeConfig, Server};
use pebble_workloads::{twitter_context, twitter_scenarios};

fn build_store() -> Arc<ProvStore> {
    let ctx = twitter_context(50);
    for scenario in twitter_scenarios() {
        let run = run_captured(&scenario.program, &ctx, ExecConfig::with_partitions(2)).unwrap();
        if !run.output.rows.is_empty() {
            return Arc::new(ProvStore::from_bytes(&persist(&run)).unwrap());
        }
    }
    panic!("no Twitter scenario produced result rows at 50 tweets");
}

/// Runs `f` on a helper thread and fails the test if it does not finish
/// within `secs` seconds — a hung shutdown must not hang the whole suite.
fn with_watchdog(secs: u64, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => worker.join().unwrap(),
        Err(_) => panic!("shutdown did not complete within {secs}s (accept loop still blocked)"),
    }
}

#[test]
fn shutdown_completes_when_bound_to_unspecified_addr() {
    let store = build_store();
    with_watchdog(30, move || {
        let cfg = ServeConfig {
            addr: "0.0.0.0:0".to_string(),
            workers: 2,
            debug_panic: false,
            trace_path: None,
        };
        let mut server = Server::start(store, &cfg).unwrap();
        assert!(server.local_addr().ip().is_unspecified());
        // The server is live: a loopback client on the bound port works.
        let addr = (std::net::Ipv4Addr::LOCALHOST, server.local_addr().port());
        let frames = query(addr, "BACKTRACE 0").unwrap();
        assert!(frames.last().unwrap().starts_with("DONE "));
        server.shutdown();
        // Idempotent: a second call returns immediately.
        server.shutdown();
    });
}

#[test]
fn drop_completes_when_bound_to_unspecified_addr() {
    let store = build_store();
    with_watchdog(30, move || {
        let cfg = ServeConfig {
            addr: "0.0.0.0:0".to_string(),
            workers: 1,
            debug_panic: false,
            trace_path: None,
        };
        let server = Server::start(store, &cfg).unwrap();
        drop(server); // Drop calls shutdown; must not hang either.
    });
}
