//! Golden on-disk fixture: the persisted segment of the paper's running
//! example, pinned as a hexdump. Any byte-level change to the format shows
//! up as a readable diff here; re-bless deliberately with `BLESS=1`.
//! A version bump must reject old files with the typed error — also
//! pinned here.

use pebble_core::run_captured;
use pebble_dataflow::ExecConfig;
use pebble_serve::{persist, ProvStore, StoreError};
use pebble_workloads::running_example;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/running_example.hex"
);

fn segment_bytes() -> Vec<u8> {
    let run = run_captured(
        &running_example::program(),
        &running_example::context(),
        ExecConfig::with_partitions(1).workers(1),
    )
    .unwrap();
    persist(&run)
}

fn hexdump(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 4);
    for (i, chunk) in bytes.chunks(16).enumerate() {
        out.push_str(&format!("{:08x} ", i * 16));
        for b in chunk {
            out.push_str(&format!(" {b:02x}"));
        }
        out.push('\n');
    }
    out
}

fn undump(text: &str) -> Vec<u8> {
    let mut out = Vec::new();
    for line in text.lines() {
        for tok in line.split_whitespace().skip(1) {
            out.push(u8::from_str_radix(tok, 16).expect("fixture holds hex bytes"));
        }
    }
    out
}

#[test]
fn segment_bytes_match_golden_fixture() {
    let bytes = segment_bytes();
    let dump = hexdump(&bytes);
    if std::env::var("BLESS").is_ok_and(|v| v == "1") {
        std::fs::write(FIXTURE, &dump).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(FIXTURE)
        .expect("golden fixture missing — run with BLESS=1 to create it");
    assert_eq!(
        dump, golden,
        "persisted segment bytes changed; if intentional, bump the format \
         version and re-bless with BLESS=1"
    );
}

#[test]
fn golden_fixture_still_cold_opens() {
    let golden = std::fs::read_to_string(FIXTURE)
        .expect("golden fixture missing — run with BLESS=1 to create it");
    let bytes = undump(&golden);
    let store = ProvStore::from_bytes(&bytes).unwrap();
    // The fixture answers like a fresh in-memory run.
    let run = run_captured(
        &running_example::program(),
        &running_example::context(),
        ExecConfig::with_partitions(1).workers(1),
    )
    .unwrap();
    assert_eq!(store.ops(), run.ops.as_slice());
    assert_eq!(store.rows(), run.output.rows.as_slice());
}

#[test]
fn other_version_files_are_rejected_with_typed_error() {
    let mut bytes = segment_bytes();
    // A file written by a future (or ancient) format version must be
    // rejected up front — never half-decoded.
    for version in [0u16, 2, 7, u16::MAX] {
        bytes[4..6].copy_from_slice(&version.to_le_bytes());
        let err = ProvStore::from_bytes(&bytes).unwrap_err();
        assert_eq!(err, StoreError::UnsupportedVersion { found: version });
        assert_eq!(
            err.to_string(),
            format!("unsupported segment version {version} (this reader speaks version 1)")
        );
    }
}
