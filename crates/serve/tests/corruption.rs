//! Decoder robustness: the segment reader must never panic on malformed
//! input, and every rejection must be one of the typed, `Display`-stable
//! [`StoreError`] forms of the PR 4 error contract.

use pebble_core::run_captured;
use pebble_dataflow::ExecConfig;
use pebble_serve::{persist, ProvStore, StoreError};
use pebble_workloads::running_example;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn base_segment() -> Vec<u8> {
    let run = run_captured(
        &running_example::program(),
        &running_example::context(),
        ExecConfig::with_partitions(1).workers(1),
    )
    .unwrap();
    persist(&run)
}

/// Every error the decoder may legally produce, by pinned `Display`
/// prefix. Anything else — above all a panic — is a bug.
fn is_typed_rejection(e: &StoreError) -> bool {
    let s = e.to_string();
    s == "not a pebble segment (bad magic)"
        || s.starts_with("unsupported segment version ")
        || s.starts_with("truncated segment: ")
        || s.starts_with("checksum mismatch in block type ")
        || (s.starts_with("block type ") && s.ends_with(" declares a length beyond the input"))
        || s.starts_with("corrupt segment: ")
        || s.starts_with("store i/o error: ")
}

#[test]
fn truncation_at_every_prefix_is_typed() {
    let bytes = base_segment();
    for len in 0..bytes.len() {
        match ProvStore::from_bytes(&bytes[..len]) {
            Ok(_) => panic!("prefix of {len} bytes decoded as a whole store"),
            Err(e) => assert!(is_typed_rejection(&e), "untyped error at len {len}: {e}"),
        }
    }
    // The untouched segment still loads.
    assert!(ProvStore::from_bytes(&bytes).is_ok());
}

#[test]
fn random_corruption_never_panics() {
    let bytes = base_segment();
    let mut rng = StdRng::seed_from_u64(0x5e9_5e9);
    for case in 0..1500 {
        let mut mutated = bytes.clone();
        match case % 5 {
            // Single bit flip.
            0 => {
                let i = rng.gen_range(0..mutated.len());
                mutated[i] ^= 1u8 << rng.gen_range(0..8u32);
            }
            // Byte overwrite.
            1 => {
                let i = rng.gen_range(0..mutated.len());
                mutated[i] = rng.gen_range(0..=255u32) as u8;
            }
            // Random truncation.
            2 => {
                let len = rng.gen_range(0..mutated.len());
                mutated.truncate(len);
            }
            // Garbage insertion.
            3 => {
                let i = rng.gen_range(0..=mutated.len());
                let n = rng.gen_range(1..16usize);
                let junk: Vec<u8> = (0..n).map(|_| rng.gen_range(0..=255u32) as u8).collect();
                mutated.splice(i..i, junk);
            }
            // Length-field scribble: stomp the 4 bytes after a block tag.
            _ => {
                let i = rng.gen_range(6..mutated.len().saturating_sub(5).max(7));
                for k in 0..4 {
                    mutated[i + k] = rng.gen_range(0..=255u32) as u8;
                }
            }
        }
        // Must not panic; must either load or reject with a typed error.
        if let Err(e) = ProvStore::from_bytes(&mutated) {
            assert!(is_typed_rejection(&e), "case {case}: untyped error: {e}");
        }
    }
}

#[test]
fn specific_damage_yields_specific_errors() {
    let bytes = base_segment();

    // Not a segment at all.
    let err = ProvStore::from_bytes(b"PBSXjunk").unwrap_err();
    assert_eq!(err, StoreError::BadMagic);
    assert_eq!(err.to_string(), "not a pebble segment (bad magic)");

    // Empty and header-only inputs.
    assert!(matches!(
        ProvStore::from_bytes(&[]).unwrap_err(),
        StoreError::Truncated(_)
    ));
    assert!(matches!(
        ProvStore::from_bytes(&bytes[..5]).unwrap_err(),
        StoreError::Truncated(_)
    ));

    // Future version: rejected before anything else is trusted, with the
    // reader's own version named in the message.
    let mut future = bytes.clone();
    future[4] = 2;
    future[5] = 0;
    let err = ProvStore::from_bytes(&future).unwrap_err();
    assert_eq!(err, StoreError::UnsupportedVersion { found: 2 });
    assert_eq!(
        err.to_string(),
        "unsupported segment version 2 (this reader speaks version 1)"
    );

    // Payload bit flip in the first block: checksum catches it and names
    // the block type.
    let mut flipped = bytes.clone();
    flipped[6 + 5] ^= 0x40; // first payload byte of the META block
    let err = ProvStore::from_bytes(&flipped).unwrap_err();
    assert_eq!(err, StoreError::ChecksumMismatch { block: 1 });
    assert_eq!(err.to_string(), "checksum mismatch in block type 1");

    // Oversized declared length.
    let mut long = bytes.clone();
    long[7] = 0xff;
    long[8] = 0xff;
    let err = ProvStore::from_bytes(&long).unwrap_err();
    assert!(matches!(err, StoreError::BadLength { .. }));

    // Trailing garbage after the END block.
    let mut trailing = bytes.clone();
    trailing.push(0);
    let err = ProvStore::from_bytes(&trailing).unwrap_err();
    assert!(matches!(err, StoreError::Corrupt(_)));
    assert_eq!(
        err.to_string(),
        "corrupt segment: trailing bytes after end-of-segment block"
    );
}
