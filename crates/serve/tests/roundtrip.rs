//! Persist → cold-open → query equality against the in-memory referee,
//! across the executor matrix and both persist paths (post-hoc and
//! streamed), plus a live query-service smoke.

use std::sync::Arc;

use pebble_core::{
    backtrace, canonical_provenance, run_captured, run_captured_with, Backtrace, CapturedRun,
    ProvTree,
};
use pebble_dataflow::{Context, ExecConfig, Program};
use pebble_nested::Path;
use pebble_serve::{
    persist, persist_file, persist_streamed, query, ProvStore, SegmentSink, ServeConfig, Server,
};
use pebble_workloads::{dblp_context, dblp_scenarios, running_example};

fn whole_item(run: &CapturedRun, idx: usize) -> Backtrace {
    let row = &run.output.rows[idx];
    let paths = Path::path_set(&row.item);
    Backtrace {
        entries: vec![(row.id, ProvTree::from_paths(paths.iter()))],
    }
}

/// Asserts the cold-opened store is indistinguishable from the in-memory
/// run: decoded tables bit-identical, and every sampled backtrace answer
/// byte-identical.
fn assert_store_equals_memory(run: &CapturedRun, store: &ProvStore, what: &str) {
    assert_eq!(store.ops(), run.ops.as_slice(), "{what}: operator tables");
    assert_eq!(store.rows(), run.output.rows.as_slice(), "{what}: rows");
    assert_eq!(
        store.op_schemas(),
        run.output.op_schemas.as_slice(),
        "{what}: schemas"
    );
    let n = run.output.rows.len();
    for idx in (0..n).step_by((n / 5).max(1)) {
        let mem = backtrace(run, whole_item(run, idx)).unwrap();
        let stored = store.backtrace(whole_item(run, idx)).unwrap();
        assert_eq!(mem, stored, "{what}: backtrace of row {idx}");
    }
}

#[test]
fn store_matches_memory_across_executor_matrix() {
    let ctx = dblp_context(120);
    for scenario in dblp_scenarios() {
        for (parts, workers) in [(1, 1), (2, 2), (7, 7)] {
            for columnar in [false, true] {
                let config = ExecConfig::with_partitions(parts)
                    .workers(workers)
                    .morsel_rows(if workers > 1 { 7 } else { 0 })
                    .columnar(columnar);
                let run = run_captured(&scenario.program, &ctx, config).unwrap();
                let bytes = persist(&run);
                let store = ProvStore::from_bytes(&bytes).unwrap();
                let what = format!(
                    "{} (p={parts}, w={workers}, columnar={columnar})",
                    scenario.name
                );
                assert_store_equals_memory(&run, &store, &what);

                // The scenario's own tree-pattern question, answered from
                // both sides.
                let mem = backtrace(&run, scenario.query.match_rows(&run.output.rows)).unwrap();
                let stored = store
                    .backtrace(scenario.query.match_rows(store.rows()))
                    .unwrap();
                assert_eq!(mem, stored, "{what}: pattern backtrace");
            }
        }
    }
}

#[test]
fn streamed_segments_decode_like_posthoc_persist() {
    let (program, ctx): (Program, Context) =
        (running_example::program(), running_example::context());
    for (parts, workers) in [(1, 1), (2, 2), (7, 7)] {
        let config = ExecConfig::with_partitions(parts)
            .workers(workers)
            .morsel_rows(if workers > 1 { 2 } else { 0 });
        let sink = SegmentSink::new();
        let run = run_captured_with(&program, &ctx, config, &sink).unwrap();
        let streamed = persist_streamed(&run, &sink.into_blocks());
        let posthoc = persist(&run);
        let a = ProvStore::from_bytes(&streamed).unwrap();
        let b = ProvStore::from_bytes(&posthoc).unwrap();
        let what = format!("streamed vs posthoc (p={parts}, w={workers})");
        assert_eq!(a.ops(), b.ops(), "{what}");
        assert_eq!(a.rows(), b.rows(), "{what}");
        assert_store_equals_memory(&run, &a, &what);
    }
}

#[test]
fn persist_file_and_cold_open() {
    let run = run_captured(
        &running_example::program(),
        &running_example::context(),
        ExecConfig::with_partitions(1).workers(1),
    )
    .unwrap();
    let dir = std::env::temp_dir().join(format!("pebble-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.seg");
    let written = persist_file(&run, &path).unwrap();
    assert_eq!(written, std::fs::metadata(&path).unwrap().len() as usize);
    let store = ProvStore::open(&path).unwrap();
    assert_eq!(store.on_disk_bytes(), written);
    assert_store_equals_memory(&run, &store, "cold-open from file");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn server_answers_match_local_computation() {
    let run = run_captured(
        &running_example::program(),
        &running_example::context(),
        ExecConfig::with_partitions(1).workers(1),
    )
    .unwrap();
    let store = Arc::new(ProvStore::from_bytes(&persist(&run)).unwrap());
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        debug_panic: false,
        trace_path: None,
    };
    let local = Arc::clone(&store);
    let mut server = Server::start(store, &cfg).unwrap();
    let addr = server.local_addr();

    // BACKTRACE frames carry exactly the canonical triples.
    let frames = query(addr, "BACKTRACE 0").unwrap();
    let triples = canonical_provenance(&local.backtrace(local.whole_item(0).unwrap()).unwrap());
    assert_eq!(frames[0], format!("PROGRESS 0/{}", triples.len()));
    assert_eq!(*frames.last().unwrap(), format!("DONE {}", triples.len()));
    let data: Vec<&String> = frames.iter().filter(|f| f.starts_with("DATA ")).collect();
    assert_eq!(data.len(), triples.len());
    for ((source, index, _), frame) in triples.iter().zip(&data) {
        assert!(
            frame.contains(&format!("\"source\": \"{source}\"")),
            "frame {frame} should name source {source}"
        );
        assert!(frame.contains(&format!("\"index\": {index}")));
    }

    // Heatmap and audit terminate with DONE and stream count-based
    // progress.
    let frames = query(addr, &format!("HEATMAP {}", local.rows().len())).unwrap();
    assert!(frames.iter().any(|f| f.starts_with("PROGRESS ")));
    assert!(frames.last().unwrap().starts_with("DONE "));
    let frames = query(addr, "AUDIT").unwrap();
    assert!(frames.last().unwrap().starts_with("DONE "));

    // Errors are typed frames, not dropped connections.
    let frames = query(addr, "FROB 12").unwrap();
    assert_eq!(
        frames,
        vec!["ERROR backtrace failed: bad request: unknown verb `FROB`".to_string()]
    );
    let frames = query(addr, "BACKTRACE 99999").unwrap();
    assert_eq!(
        frames,
        vec![format!(
            "ERROR backtrace failed: bad request: row index 99999 out of range ({} result rows)",
            local.rows().len()
        )]
    );
    // PANIC is rejected unless debug_panic is configured.
    let frames = query(addr, "PANIC").unwrap();
    assert_eq!(
        frames,
        vec!["ERROR backtrace failed: bad request: unknown verb `PANIC`".to_string()]
    );

    let stats = server.stats();
    assert!(stats.connections >= 6);
    assert!(stats.queries >= 6);
    assert!(stats.errors >= 3);
    assert_eq!(stats.panics_contained, 0);
    server.shutdown();
}
