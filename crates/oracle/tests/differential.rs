//! Differential acceptance tests: the engine agrees with the Tab. 5
//! reference interpreter on a fixed sweep of generated pipelines and on
//! every Tab. 7 evaluation scenario.

use pebble_core::run_captured;
use pebble_oracle::{check, fuzz, generate, reference_config, run_reference};

/// The headline acceptance bar: 200 generated pipelines, zero divergences.
/// Every case is compared bit-for-bit against the reference at
/// `partitions: 1` (rows + ids + association tables + independently
/// derived access/manipulation sets), fused vs unfused, capture on vs off,
/// across partition counts 1/2/7, and on sampled backtraces.
#[test]
fn two_hundred_generated_pipelines_agree() {
    let outcome = fuzz(0, 200, 0);
    assert_eq!(outcome.checked, 200);
    let report: Vec<String> = outcome
        .divergences
        .iter()
        .map(|(g, d)| format!("{d} — pipeline {}", g.spec.describe()))
        .collect();
    assert!(
        report.is_empty(),
        "differential divergences:\n{}",
        report.join("\n")
    );
}

/// A disjoint seed range, so local `oracle_fuzz` sweeps over `0..N` don't
/// silently retest what CI already covered.
#[test]
fn high_seed_range_agrees() {
    let outcome = fuzz(1_000_000, 50, 0);
    assert!(
        outcome.divergences.is_empty(),
        "divergence: {}",
        outcome.divergences[0].1
    );
}

/// Same seed, same case — the fuzzer is reproducible, which is what makes
/// a reported seed a repro.
#[test]
fn generator_is_deterministic() {
    for seed in [0, 1, 17, 123_456_789] {
        assert_eq!(generate(seed), generate(seed));
    }
}

/// Generated pipelines exercise the operator alphabet: across a modest
/// sweep every operator type must appear at least once, otherwise the
/// oracle silently stopped covering part of Tab. 5.
#[test]
fn generator_covers_all_operator_types() {
    let mut seen: std::collections::BTreeSet<String> = Default::default();
    for seed in 0..300 {
        for name in generate(seed).spec.describe().split('>') {
            seen.insert(name.to_string());
        }
    }
    for ty in [
        "read",
        "filter",
        "select",
        "map",
        "flatten",
        "join",
        "union",
        "aggregation",
    ] {
        assert!(seen.contains(ty), "no generated pipeline used `{ty}`");
    }
}

/// The hand-written Tab. 7 evaluation scenarios (T1–T5, D1–D5) also match
/// the reference bit-for-bit — the oracle is not limited to pipelines its
/// own generator dreamt up.
#[test]
fn evaluation_scenarios_match_reference() {
    let tw = pebble_workloads::twitter_context(40);
    for s in pebble_workloads::twitter_scenarios() {
        let reference = run_reference(&s.program, &tw).expect("reference runs");
        let engine = run_captured(&s.program, &tw, reference_config()).expect("engine runs");
        assert_eq!(reference.output.rows, engine.output.rows, "{} rows", s.name);
        assert_eq!(reference.ops, engine.ops, "{} provenance", s.name);
    }
    let db = pebble_workloads::dblp_context(60);
    for s in pebble_workloads::dblp_scenarios() {
        let reference = run_reference(&s.program, &db).expect("reference runs");
        let engine = run_captured(&s.program, &db, reference_config()).expect("engine runs");
        assert_eq!(reference.output.rows, engine.output.rows, "{} rows", s.name);
        assert_eq!(reference.ops, engine.ops, "{} provenance", s.name);
    }
}

/// `check` returns `None` (not a panic) for a pipeline the static layer
/// rejects on both sides.
#[test]
fn rejected_pipelines_count_as_agreement() {
    use pebble_oracle::{CmpKind, DatasetSpec, LitSpec, OpSpec, PipelineSpec, PredSpec};
    let gen = pebble_oracle::Generated {
        seed: 0,
        dataset: DatasetSpec::from_ndjson(&[("t", "{\"a\": 1}")]),
        spec: PipelineSpec {
            ops: vec![
                OpSpec::Read { source: "t".into() },
                // Comparing an integer column to a string literal fails
                // static typing in both the reference and the engine.
                OpSpec::Filter {
                    input: 0,
                    pred: PredSpec::Cmp {
                        path: "a".into(),
                        cmp: CmpKind::Lt,
                        lit: LitSpec::Str("x".into()),
                    },
                },
            ],
        },
    };
    assert_eq!(check(&gen), None);
}
