//! Pinned malformed-input repros (see `regressions/README.md`).
//!
//! Same shape as `regressions.rs`, but the pinned contract is the *error
//! path*: the morsel-pool executor (`run`) and the legacy spawn executor
//! (`run_spawn`) must return byte-identical `Err`s for inputs that panic
//! mid-run or fail validation, at every partition count — a failing run
//! is part of the observable semantics, not an accident of scheduling.

use pebble_dataflow::{run, run_spawn, EngineError, ExecConfig, NoSink, RunOutput};
use pebble_oracle::{
    check_malformed, generate_malformed, DatasetSpec, Generated, OpSpec, PipelineSpec, UdfSpec,
};

/// Runs both executors on `gen` at `parts` partitions and asserts they
/// fail identically, returning the shared error.
fn identical_err(gen: &Generated, parts: usize) -> EngineError {
    let program = gen.spec.compile();
    let ctx = gen.dataset.context();
    let config = ExecConfig::with_partitions(parts);
    let pool: Result<RunOutput, EngineError> = run(&program, &ctx, config, &NoSink);
    let spawn: Result<RunOutput, EngineError> = run_spawn(&program, &ctx, config, &NoSink);
    let pool = pool.err().expect("pool run must fail");
    let spawn = spawn.err().expect("spawn run must fail");
    assert_eq!(pool, spawn, "pool and spawn errors differ at p={parts}");
    assert_eq!(pool.to_string(), spawn.to_string());
    pool
}

/// A UDF that panics on the first row: both executors surface the same
/// row-level error, naming the map operator and the first input row of
/// the first partition — at every partition count.
#[test]
fn malformed_pinned_panicking_udf() {
    let dataset =
        DatasetSpec::from_ndjson(&[("t", "{\"a\": 1}\n{\"a\": 2}\n{\"a\": 3}\n{\"a\": 4}")]);
    let spec = PipelineSpec {
        ops: vec![
            OpSpec::Read { source: "t".into() },
            OpSpec::Map {
                input: 0,
                udf: UdfSpec::PanicAlways {
                    message: "boom".into(),
                },
            },
        ],
    };
    let gen = Generated {
        seed: 0,
        dataset,
        spec,
    };
    for parts in [1, 2, 7] {
        let err = identical_err(&gen, parts);
        assert_eq!(
            err.to_string(),
            "operator #1: row 0x0: udf `panic_always` panicked: boom",
            "at p={parts}"
        );
    }
    assert_eq!(check_malformed(&gen), None);
}

/// A UDF that panics only on one row in the middle of the dataset: the
/// executors must pick the same failing row (first failure in task
/// order), not whichever worker lost the race.
#[test]
fn malformed_pinned_partial_udf_failure() {
    let dataset = DatasetSpec::from_ndjson(&[(
        "t",
        "{\"s\": \"ok\"}\n{\"s\": \"ok\"}\n{\"s\": \"poison\"}\n{\"s\": \"ok\"}\n{\"s\": \"poison\"}",
    )]);
    let spec = PipelineSpec {
        ops: vec![
            OpSpec::Read { source: "t".into() },
            OpSpec::Map {
                input: 0,
                udf: UdfSpec::PanicOnNeedle {
                    needle: "poison".into(),
                },
            },
        ],
    };
    let gen = Generated {
        seed: 0,
        dataset,
        spec,
    };
    let err = identical_err(&gen, 1);
    assert_eq!(
        err.to_string(),
        "operator #1: row 0x2: udf `panic_on_needle` panicked: refusing item containing `poison`"
    );
    for parts in [2, 7] {
        identical_err(&gen, parts);
    }
    assert_eq!(check_malformed(&gen), None);
}

/// An unresolvable flatten path: static validation rejects the program
/// before any data moves, identically in both executors and at every
/// partition count.
#[test]
fn malformed_pinned_unresolvable_path() {
    let dataset = DatasetSpec::from_ndjson(&[("t", "{\"a\": 1}\n{\"a\": 2}")]);
    let spec = PipelineSpec {
        ops: vec![
            OpSpec::Read { source: "t".into() },
            OpSpec::Flatten {
                input: 0,
                col: "__corrupt__".into(),
                new_attr: "x".into(),
            },
        ],
    };
    let gen = Generated {
        seed: 0,
        dataset,
        spec,
    };
    let p1 = identical_err(&gen, 1).to_string();
    for parts in [2, 7] {
        assert_eq!(identical_err(&gen, parts).to_string(), p1);
    }
    assert!(
        p1.contains("__corrupt__"),
        "rejection names the offending path: {p1}"
    );
    assert_eq!(check_malformed(&gen), None);
}

/// A bounded slice of the malformed fuzz corpus stays divergence-free:
/// every corrupted case yields the same outcome from the pool and spawn
/// executors across the whole configuration matrix.
#[test]
fn malformed_corpus_slice_agrees() {
    for seed in 0..25 {
        let gen = generate_malformed(seed);
        assert_eq!(
            check_malformed(&gen),
            None,
            "seed {seed}: {}",
            gen.spec.describe()
        );
    }
}
