//! Pinned out-of-core repros (own binary: the spill-fault plan is
//! process-global, so every test here takes `FAULT_LOCK` and nothing else
//! may share the process with an armed fault).
//!
//! Two kinds of pin:
//!
//! * **shape pins** — hand-built pipelines whose state is exactly what the
//!   budget machinery targets (a grace-partitioned join build, a spilled
//!   shuffle, a skewed flatten) run through [`check`], whose out-of-core
//!   axis re-executes them bit-for-bit at a one-byte budget;
//! * **fault pins** — an injected spill-write failure must surface as the
//!   same typed, path-free `Display` from every executor and from both
//!   spill layers (engine operator/bucket spill and capture-sink
//!   association spill), and the engine must run clean after `disarm`.

use std::sync::{Mutex, PoisonError};

use pebble_core::{run_captured, run_captured_spawn, run_captured_unfused};
use pebble_dataflow::fault::{arm_spill, disarm};
use pebble_oracle::{
    check, check_malformed, generate_malformed, reference_config, AggKind, CmpKind, DatasetSpec,
    Generated, LitSpec, OpSpec, PipelineSpec, PredSpec,
};

/// Serializes tests in this binary: the spill-fault plan is process-wide.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// `events ⋈ users` rolled up per org: the join build side exercises the
/// grace-hash partitioning, the aggregation exercises the shuffle spill,
/// and every operator feeds the capture sink's association spill.
fn join_group_case() -> Generated {
    let mut events = String::new();
    for i in 0..48i64 {
        let xs: Vec<String> = (0..if i == 0 { 13 } else { i % 4 })
            .map(|x| x.to_string())
            .collect();
        events.push_str(&format!(
            "{{\"u\": {}, \"xs\": [{}]}}\n",
            i % 6,
            xs.join(", ")
        ));
    }
    let mut users = String::new();
    for i in 0..6i64 {
        users.push_str(&format!("{{\"uid\": {}, \"org\": {}}}\n", i, i % 2));
    }
    let dataset =
        DatasetSpec::from_ndjson(&[("events", events.trim_end()), ("users", users.trim_end())]);
    let spec = PipelineSpec {
        ops: vec![
            OpSpec::Read {
                source: "events".into(),
            },
            OpSpec::Flatten {
                input: 0,
                col: "xs".into(),
                new_attr: "x".into(),
            },
            OpSpec::Filter {
                input: 1,
                pred: PredSpec::Cmp {
                    path: "x".into(),
                    cmp: CmpKind::Ge,
                    lit: LitSpec::Int(1),
                },
            },
            OpSpec::Read {
                source: "users".into(),
            },
            OpSpec::Join {
                left: 2,
                right: 3,
                keys: vec![("u".into(), "uid".into())],
            },
            OpSpec::GroupAgg {
                input: 4,
                keys: vec![("org".into(), "org".into())],
                aggs: vec![
                    (AggKind::Count, "".into(), "n".into()),
                    (AggKind::Sum, "x".into(), "sx".into()),
                ],
            },
        ],
    };
    Generated {
        seed: 0,
        dataset,
        spec,
    }
}

/// Grace-hash join + spilled shuffle + capture spill, bit-identical to the
/// in-memory run through the full differential matrix (the out-of-core
/// axis inside [`check`] re-runs this at a one-byte budget, `w∈{1,2}`,
/// row and columnar).
#[test]
fn oracle_pinned_join_group_spill_shape() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    assert_eq!(check(&join_group_case()), None);
}

/// One pathologically fat bag among small ones: the flatten's output
/// morsels are skewed, so spilled blocks and in-memory morsels must agree
/// on boundaries for ids to stitch identically.
#[test]
fn oracle_pinned_skewed_flatten_spill_shape() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let mut rows = String::from("{\"k\": 0, \"xs\": [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]}\n");
    for i in 1..24i64 {
        rows.push_str(&format!("{{\"k\": {}, \"xs\": [{}]}}\n", i, i % 3));
    }
    let dataset = DatasetSpec::from_ndjson(&[("t", rows.trim_end())]);
    let spec = PipelineSpec {
        ops: vec![
            OpSpec::Read { source: "t".into() },
            OpSpec::Flatten {
                input: 0,
                col: "xs".into(),
                new_attr: "x".into(),
            },
            OpSpec::Union { left: 1, right: 1 },
            OpSpec::Filter {
                input: 2,
                pred: PredSpec::Cmp {
                    path: "x".into(),
                    cmp: CmpKind::Gt,
                    lit: LitSpec::Int(0),
                },
            },
        ],
    };
    let gen = Generated {
        seed: 0,
        dataset,
        spec,
    };
    assert_eq!(check(&gen), None);
}

/// An injected spill-write failure is `Display`-identical from every
/// executor and configuration, whichever spill layer hits it first: the
/// engine's operator-output/grace-bucket/shuffle writers and the capture
/// sink's association-chunk writer all fail through the same typed,
/// path-free error. Targets: the read (a fused chain head, so the fused
/// engine only reaches it through the *capture* layer while the unfused
/// engine reaches it through the *engine* layer), the join (grace
/// buckets), and the group (shuffle buckets — also the sink, which never
/// spills its output, so only bucket and capture writes can fail).
#[test]
fn spill_fault_display_identical_across_executors() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let gen = join_group_case();
    let program = gen.spec.compile();
    let ctx = gen.dataset.context();
    let budgeted = reference_config().mem_budget(1);

    for op in [0u32, 4, 5] {
        arm_spill(op);
        let expect = format!("spill failed at operator #{op}: injected spill-write failure");
        let runs = [
            ("fused pool w=1", run_captured(&program, &ctx, budgeted)),
            (
                "unfused pool w=1",
                run_captured_unfused(&program, &ctx, budgeted),
            ),
            (
                "fused pool w=2",
                run_captured(&program, &ctx, budgeted.workers(2).morsel_rows(3)),
            ),
            (
                "fused columnar",
                run_captured(&program, &ctx, budgeted.columnar(true)),
            ),
            // The spawn executor ignores the engine budget entirely; it
            // still fails identically because the capture layer spills.
            ("spawn", run_captured_spawn(&program, &ctx, budgeted)),
        ];
        disarm();
        for (name, outcome) in runs {
            let err = outcome
                .err()
                .unwrap_or_else(|| panic!("{name}: armed spill fault at op #{op} must fail"));
            assert_eq!(err.to_string(), expect, "{name}, op #{op}");
        }
    }

    // Clean after disarm: the very next budgeted run succeeds and spills.
    let run = run_captured(&program, &ctx, budgeted).expect("disarmed run must succeed");
    let spill = run.output.report.spill.expect("budgeted run reports spill");
    assert!(spill.spills > 0 && spill.capture_spills > 0);
}

/// Malformed pins: corrupted cases (UDF panics, corrupted paths) keep
/// their exact outcome — including `Display`-identical failures — under
/// the one-byte budget axis inside [`check_malformed`].
#[test]
fn malformed_pinned_seeds_agree_under_budget() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    for seed in [0u64, 7, 123, 999] {
        let gen = generate_malformed(seed);
        assert_eq!(check_malformed(&gen), None, "seed {seed}");
    }
}
