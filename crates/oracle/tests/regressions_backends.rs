//! Pinned backend-axis repros (see `regressions/README.md`).
//!
//! Seeds that diverged while the backend differential axis was built,
//! pinned so they keep passing. The original failure: on malformed cases
//! whose UDF panic fires, the engine error embeds the failing *row id*,
//! and row ids legitimately move with the partition count — the backend
//! shape check must compare errors `Display`-exactly only between shapes
//! that preserve identifiers (p=1), and merely require rejection at other
//! partition counts. Seeds 25/40/42/53/71 all tripped the over-strict
//! comparison; the minimized repro was seed 25's
//! `read>select>aggregation>map(panic_always)` at p=1 vs p=2.

use pebble_core::{run_captured, SemiringBackend, StructuralBackend, WhyNotBackend};
use pebble_core::{CaptureBackend, CapturedRun};
use pebble_dataflow::ExecConfig;
use pebble_oracle::{
    check_backends, check_backends_malformed, generate, generate_malformed, AggKind, ColSpec,
    DatasetSpec, Generated, OpSpec, PipelineSpec, UdfSpec,
};

/// The five seeds that diverged before the partition-error fix: the UDF
/// panic error names a different row id at p∈{2,7} than at p=1, which is
/// legitimate; every shape must still *reject*.
#[test]
fn backends_pinned_partition_error_seeds() {
    for seed in [25, 40, 42, 53, 71] {
        let gen = generate_malformed(seed);
        assert_eq!(check_backends_malformed(&gen), None, "seed {seed}");
    }
}

/// The minimized repro of the seed-25 divergence, pinned as data so the
/// generator may drift: a panicking map above an aggregation rejects at
/// every shape, with `Display`-identical errors at p=1 shapes.
#[test]
fn backends_pinned_minimized_seed_25() {
    let dataset = DatasetSpec::from_ndjson(&[
        ("inproceedings", "{\"key\":\"conf/c0/paper15\",\"type\":\"inproceedings\",\"title\":\"Paper Title 15\",\"year\":2010,\"crossref\":\"conf/c0\",\"authors\":[{\"name\":\"Author 5\"},{\"name\":\"Author 1\"},{\"name\":\"Author 7\"}],\"pages\":\"15-27\",\"booktitle\":\"Conf 0\"}"),
    ]);
    let spec = PipelineSpec {
        ops: vec![
            OpSpec::Read {
                source: "inproceedings".into(),
            },
            OpSpec::Select {
                input: 0,
                cols: vec![ColSpec::Path {
                    name: "c0".into(),
                    path: "key".into(),
                }],
            },
            OpSpec::GroupAgg {
                input: 1,
                keys: vec![("k0".into(), "c0".into())],
                aggs: vec![
                    (AggKind::Max, "c0".into(), "a0".into()),
                    (AggKind::Count, "c0".into(), "a1".into()),
                    (AggKind::Max, "c0".into(), "a2".into()),
                ],
            },
            OpSpec::Map {
                input: 2,
                udf: UdfSpec::PanicAlways {
                    message: "injected failure for seed 25".into(),
                },
            },
        ],
    };
    let gen = Generated {
        seed: 25,
        dataset,
        spec,
    };
    assert_eq!(check_backends_malformed(&gen), None);

    // The p=1 error is stable and embeds the row; p=2 embeds a different
    // row id but the same failure.
    let program = gen.spec.compile();
    let ctx = gen.dataset.context();
    let p1 = run_captured(&program, &ctx, ExecConfig::with_partitions(1))
        .err()
        .expect("p=1 run must fail");
    let p2 = run_captured(&program, &ctx, ExecConfig::with_partitions(2))
        .err()
        .expect("p=2 run must fail");
    assert!(p1.to_string().contains("panic_always"));
    assert!(p2.to_string().contains("panic_always"));
    assert_ne!(p1.to_string(), p2.to_string());
}

/// First valid seeds of the fuzz sweep, pinned: the backend axis ran
/// clean over seeds 0..1000 (valid and malformed); keep the head of that
/// range green as a cheap tier-1 canary.
#[test]
fn backends_pinned_valid_head() {
    for seed in 0..8 {
        let gen = generate(seed);
        assert_eq!(check_backends(&gen), None, "seed {seed}");
    }
}

/// Backend answers on a pinned case are themselves pinned: the rendered
/// polynomial, count, probability, and why-not text for seed 3 must never
/// drift — they are part of the observable query contract.
#[test]
fn backends_pinned_answer_text() {
    let gen = generate(3);
    let program = gen.spec.compile();
    let ctx = gen.dataset.context();
    let run: CapturedRun = run_captured(&program, &ctx, ExecConfig::with_partitions(1)).unwrap();
    if run.output.rows.is_empty() {
        panic!("seed 3 produced no rows; repin this test on a producing seed");
    }
    let answer = |b: &dyn CaptureBackend, q: &str| -> String {
        match b.prepare(&run, &ctx).unwrap().answer(q) {
            Ok(lines) => format!("ok:{}", lines.join("\n")),
            Err(e) => format!("err:{e}"),
        }
    };
    let poly = answer(&SemiringBackend, "POLY 0");
    let count = answer(&SemiringBackend, "COUNT 0");
    let prob = answer(&SemiringBackend, "PROB 0");
    let whynot = answer(&WhyNotBackend, "WHYNOT nonexistent_attr=1");
    let bt = answer(&StructuralBackend, "BACKTRACE 0");
    // Render a compact transcript so any drift shows the whole picture.
    let transcript = format!("{poly}\n{count}\n{prob}\n{whynot}\n{bt}");
    assert!(transcript.starts_with("ok:"), "transcript: {transcript}");
    assert!(count.starts_with("ok:"), "transcript: {transcript}");
    assert!(prob.starts_with("ok:"), "transcript: {transcript}");
    assert!(whynot.starts_with("ok:"), "transcript: {transcript}");
    assert!(bt.starts_with("ok:"), "transcript: {transcript}");
}
