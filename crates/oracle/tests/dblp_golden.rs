//! Golden fixtures for a DBLP pipeline covering `flatten` + `groupBy`
//! provenance: the exact output NDJSON and the exact rendered provenance
//! (association-table sizes, access/manipulation sets, and a backtrace)
//! are pinned byte-for-byte.
//!
//! Re-bless after an *intentional* change with
//! `BLESS=1 cargo test -p pebble-oracle --test dblp_golden`.

use pebble_core::{backtrace, canonical_provenance, run_captured, Backtrace, ProvTree};
use pebble_dataflow::{AggFunc, AggSpec, ExecConfig, Expr, GroupKey, Program, ProgramBuilder};
use pebble_nested::{json, Path};
use pebble_oracle::run_reference;

/// Authors-per-paper inversion: which papers did each person co-author?
/// (flatten over the `authors` bag, then group by the exploded author).
fn golden_program() -> Program {
    let mut b = ProgramBuilder::new();
    let r = b.read("inproceedings");
    let recent = b.filter(r, Expr::col("year").ge(Expr::lit(2011i64)));
    let fl = b.flatten(recent, "authors", "author");
    let g = b.group_aggregate(
        fl,
        vec![GroupKey::aliased("who", "author")],
        vec![
            AggSpec::new(AggFunc::Count, "", "papers"),
            AggSpec::new(AggFunc::CollectList, "title", "titles"),
            AggSpec::new(AggFunc::Min, "year", "since"),
        ],
    );
    b.build(g)
}

fn golden_ctx() -> pebble_dataflow::Context {
    pebble_workloads::fuzz_dblp_context(11, 60)
}

fn fixture_path(name: &str) -> String {
    format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn check_fixture(name: &str, text: &str) {
    let path = fixture_path(name);
    if std::env::var("BLESS").is_ok() {
        std::fs::write(&path, text).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {path} ({e}); run with BLESS=1 to create"));
    assert_eq!(
        text, golden,
        "{name} drifted from the checked-in fixture; if the change is \
         intentional, re-bless with BLESS=1"
    );
}

/// The pipeline's output rows, pinned as NDJSON.
#[test]
fn dblp_flatten_group_output_matches_fixture() {
    let run = run_captured(
        &golden_program(),
        &golden_ctx(),
        ExecConfig::with_partitions(3),
    )
    .expect("golden pipeline runs");
    let text = run
        .output
        .rows
        .iter()
        .map(|r| json::item_to_string(&r.item))
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    check_fixture("dblp_flatten_group.ndjson", &text);
}

/// The captured provenance and a backtrace through flatten + groupBy,
/// pinned as a rendered text report. Identifiers are excluded (they
/// encode partitioning); everything identifier-free is exact.
#[test]
fn dblp_flatten_group_provenance_matches_fixture() {
    let program = golden_program();
    let ctx = golden_ctx();
    let run = run_captured(&program, &ctx, ExecConfig::with_partitions(3)).unwrap();

    let mut out = String::new();
    out.push_str("# operator provenance (Def. 5.1, identifier-free parts)\n");
    for op in &run.ops {
        let a: Vec<String> = op
            .inputs
            .iter()
            .map(|i| match &i.accessed {
                None => "⊥".to_string(),
                Some(ps) => format!(
                    "{{{}}}",
                    ps.iter()
                        .map(Path::to_string)
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            })
            .collect();
        let m = match &op.manipulated {
            None => "⊥".to_string(),
            Some(ms) => format!(
                "{{{}}}",
                ms.iter()
                    .map(|(i, o)| format!("⟨{i}, {o}⟩"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        };
        out.push_str(&format!(
            "op {} {}: assoc_entries={} A=[{}] M={}\n",
            op.oid,
            op.op_type,
            op.assoc.len(),
            a.join(", "),
            m
        ));
    }

    out.push_str("\n# whole-item backtrace of the first result row\n");
    let row = &run.output.rows[0];
    out.push_str(&format!("result: {}\n", json::item_to_string(&row.item)));
    let tree = ProvTree::from_paths(Path::path_set(&row.item).iter());
    let sources = backtrace(
        &run,
        Backtrace {
            entries: vec![(row.id, tree)],
        },
    )
    .unwrap();
    for (source, index, tree) in canonical_provenance(&sources) {
        out.push_str(&format!("{source}[{index}]: {tree}\n"));
    }
    check_fixture("dblp_flatten_group.trace", &out);
}

/// The same pipeline also agrees with the Tab. 5 reference interpreter
/// bit-for-bit, so the fixtures pin behavior both engines share.
#[test]
fn dblp_flatten_group_matches_reference() {
    let program = golden_program();
    let ctx = golden_ctx();
    let reference = run_reference(&program, &ctx).unwrap();
    let engine = run_captured(&program, &ctx, pebble_oracle::reference_config()).unwrap();
    assert_eq!(reference.output.rows, engine.output.rows);
    assert_eq!(reference.ops, engine.ops);
}
