//! Pinned store-axis repros (see `regressions/README.md`).
//!
//! Same shape as `regressions.rs`, but each case is chosen to stress a
//! specific encoder path in the persistent segment format: unary RLE
//! runs, binary join/union deltas, flatten position columns, aggregate
//! member lists, the row string table, and the empty-result degenerate.
//! `check` runs the full oracle — including the persist → cold-open →
//! query axis added with the store — so `None` here means the store
//! answered byte-identically to the in-memory referee; a direct
//! persist/decode equality assertion is layered on top so a store-axis
//! break fails loudly even if the oracle's sampling misses it.

use pebble_core::run_captured;
use pebble_dataflow::ExecConfig;
use pebble_oracle::{
    check, check_malformed, AggKind, CmpKind, ColSpec, DatasetSpec, Generated, LitSpec, OpSpec,
    PipelineSpec, PredSpec, UdfSpec,
};
use pebble_serve::{persist, ProvStore};

/// Persists `gen`'s fused run and asserts the cold-opened tables are
/// bit-identical to the in-memory ones.
fn assert_store_roundtrip(gen: &Generated) {
    let program = gen.spec.compile();
    let ctx = gen.dataset.context();
    let run = run_captured(&program, &ctx, ExecConfig::with_partitions(1)).unwrap();
    let store = ProvStore::from_bytes(&persist(&run)).unwrap();
    assert_eq!(store.ops(), run.ops.as_slice());
    assert_eq!(store.rows(), run.output.rows.as_slice());
    assert_eq!(store.op_schemas(), run.output.op_schemas.as_slice());
}

/// A filter that passes long consecutive ranges: the unary association
/// table is one giant run, the RLE encoder's best case — and its most
/// dangerous one if run lengths or delta resets are wrong.
#[test]
fn store_pinned_unary_rle_long_runs() {
    let rows: Vec<String> = (0..200).map(|i| format!("{{\"a\": {i}}}")).collect();
    let dataset = DatasetSpec::from_ndjson(&[("t", rows.join("\n").as_str())]);
    let spec = PipelineSpec {
        ops: vec![
            OpSpec::Read { source: "t".into() },
            OpSpec::Filter {
                input: 0,
                pred: PredSpec::Cmp {
                    path: "a".into(),
                    cmp: CmpKind::Lt,
                    lit: LitSpec::Int(150),
                },
            },
            OpSpec::Select {
                input: 1,
                cols: vec![ColSpec::Path {
                    name: "a".into(),
                    path: "a".into(),
                }],
            },
        ],
    };
    let gen = Generated {
        seed: 0,
        dataset,
        spec,
    };
    assert_eq!(check(&gen), None);
    assert_store_roundtrip(&gen);
}

/// Join then union: both binary association kinds in one segment, with
/// out-of-order id pairs exercising the signed zigzag deltas.
#[test]
fn store_pinned_binary_assoc_join_union() {
    let dataset = DatasetSpec::from_ndjson(&[
        (
            "l",
            "{\"k\": 1, \"v\": 10}\n{\"k\": 2, \"v\": 20}\n{\"k\": 1, \"v\": 30}",
        ),
        (
            "r",
            "{\"k\": 2, \"w\": 5}\n{\"k\": 1, \"w\": 6}\n{\"k\": 1, \"w\": 7}",
        ),
    ]);
    let spec = PipelineSpec {
        ops: vec![
            OpSpec::Read { source: "l".into() },
            OpSpec::Read { source: "r".into() },
            OpSpec::Join {
                left: 0,
                right: 1,
                keys: vec![("k".into(), "k".into())],
            },
            OpSpec::Union { left: 2, right: 2 },
        ],
    };
    let gen = Generated {
        seed: 0,
        dataset,
        spec,
    };
    assert_eq!(check(&gen), None);
    assert_store_roundtrip(&gen);
}

/// Flatten over mixed collections: the flatten chunk carries a position
/// column whose values repeat and reset per input item.
#[test]
fn store_pinned_flatten_position_column() {
    let dataset = DatasetSpec::from_ndjson(&[(
        "t",
        "{\"k\": 1, \"xs\": [1, 2, 3]}\n{\"k\": 2, \"xs\": []}\n{\"k\": 3, \"xs\": [4]}\n{\"k\": 4, \"xs\": [5, 6]}",
    )]);
    let spec = PipelineSpec {
        ops: vec![
            OpSpec::Read { source: "t".into() },
            OpSpec::Flatten {
                input: 0,
                col: "xs".into(),
                new_attr: "x".into(),
            },
            OpSpec::Filter {
                input: 1,
                pred: PredSpec::Cmp {
                    path: "x".into(),
                    cmp: CmpKind::Gt,
                    lit: LitSpec::Int(1),
                },
            },
        ],
    };
    let gen = Generated {
        seed: 0,
        dataset,
        spec,
    };
    assert_eq!(check(&gen), None);
    assert_store_roundtrip(&gen);
}

/// Group-aggregate with a count: member lists in the agg chunk plus
/// count-star output paths in the operator-aux block.
#[test]
fn store_pinned_agg_members_and_countstar() {
    let dataset = DatasetSpec::from_ndjson(&[(
        "t",
        "{\"g\": 1, \"v\": 5}\n{\"g\": 2, \"v\": 6}\n{\"g\": 1, \"v\": 7}\n{\"g\": 2, \"v\": 8}\n{\"g\": 1, \"v\": 9}",
    )]);
    let spec = PipelineSpec {
        ops: vec![
            OpSpec::Read { source: "t".into() },
            OpSpec::GroupAgg {
                input: 0,
                keys: vec![("g".into(), "g".into())],
                aggs: vec![
                    (AggKind::Count, String::new(), "n".into()),
                    (AggKind::CollectList, "v".into(), "vs".into()),
                ],
            },
        ],
    };
    let gen = Generated {
        seed: 0,
        dataset,
        spec,
    };
    assert_eq!(check(&gen), None);
    assert_store_roundtrip(&gen);
}

/// A filter that rejects everything: zero result rows, so the store has
/// an empty row table and an empty backtrace index — the degenerate the
/// length validators must accept.
#[test]
fn store_pinned_empty_result_set() {
    let dataset = DatasetSpec::from_ndjson(&[("t", "{\"a\": 1}\n{\"a\": 2}\n{\"a\": 3}")]);
    let spec = PipelineSpec {
        ops: vec![
            OpSpec::Read { source: "t".into() },
            OpSpec::Filter {
                input: 0,
                pred: PredSpec::Cmp {
                    path: "a".into(),
                    cmp: CmpKind::Gt,
                    lit: LitSpec::Int(100),
                },
            },
        ],
    };
    let gen = Generated {
        seed: 0,
        dataset,
        spec,
    };
    assert_eq!(check(&gen), None);
    let program = gen.spec.compile();
    let ctx = gen.dataset.context();
    let run = run_captured(&program, &ctx, ExecConfig::with_partitions(1)).unwrap();
    assert!(run.output.rows.is_empty());
    let store = ProvStore::from_bytes(&persist(&run)).unwrap();
    assert!(store.rows().is_empty());
    assert_eq!(store.ops(), run.ops.as_slice());
}

/// Malformed axis with a dud trigger: the panic-armed UDF never fires,
/// so every partition run is `Ok` — and `check_malformed` round-trips
/// each of them (plus the fused run, with sampled backtrace questions)
/// through the store byte-identically.
#[test]
fn store_pinned_malformed_axis_ok_runs_roundtrip() {
    let dataset =
        DatasetSpec::from_ndjson(&[("t", "{\"a\": 1}\n{\"a\": 2}\n{\"a\": 3}\n{\"a\": 4}")]);
    let spec = PipelineSpec {
        ops: vec![
            OpSpec::Read { source: "t".into() },
            OpSpec::Map {
                input: 0,
                udf: UdfSpec::PanicOnNeedle {
                    needle: "never-present".into(),
                },
            },
        ],
    };
    let gen = Generated {
        seed: 0,
        dataset,
        spec,
    };
    assert_eq!(check_malformed(&gen), None);
}
