//! The failure minimizer, tested against synthetic failure predicates
//! (the differential oracle currently has no diverging case to shrink —
//! see `tests/regressions/README.md`).

use pebble_oracle::{generate, minimize_with, regression_code, DatasetSpec, Generated, OpSpec};

/// Shrinking against "the pipeline still contains a flatten" must strip
/// every other operator and almost every row, and stay 1-minimal.
#[test]
fn shrinks_to_one_minimal_case() {
    // Find a generated case with a flatten in it.
    let has_flatten = |g: &Generated| {
        g.spec
            .ops
            .iter()
            .any(|o| matches!(o, OpSpec::Flatten { .. }))
    };
    let gen = (0..500)
        .map(generate)
        .find(|g| has_flatten(g) && g.spec.ops.len() >= 3)
        .expect("some generated pipeline contains a flatten");

    let small = minimize_with(&gen, has_flatten);
    assert!(has_flatten(&small), "shrunk case still fails");
    assert!(
        small.spec.ops.len() <= 2,
        "read + flatten is enough, got {}",
        small.spec.describe()
    );
    // 1-minimality over rows: the predicate ignores the dataset entirely,
    // so every droppable row must be gone.
    assert_eq!(small.dataset.rows(), 0, "rows are not needed to fail");
}

/// A predicate that also needs data keeps exactly the rows it needs.
#[test]
fn keeps_rows_the_predicate_needs() {
    let gen = (0..500)
        .map(generate)
        .find(|g| g.dataset.rows() >= 10)
        .expect("a case with rows");
    let failing = |g: &Generated| g.dataset.rows() >= 3;
    let small = minimize_with(&gen, failing);
    assert_eq!(small.dataset.rows(), 3);
}

/// A non-failing case comes back untouched.
#[test]
fn non_failing_case_is_returned_unchanged() {
    let gen = generate(7);
    let same = minimize_with(&gen, |_| false);
    assert_eq!(same, gen);
}

/// Operator removal rewires consumers and prunes unreachable reads, so
/// every shrunk candidate still compiles and runs.
#[test]
fn removal_keeps_pipelines_well_formed() {
    // Count every candidate the minimizer probes; all of them must
    // compile (PipelineSpec::compile panics on dangling references).
    let gen = (0..500)
        .map(generate)
        .find(|g| {
            g.spec.ops.len() >= 5
                && g.spec
                    .ops
                    .iter()
                    .any(|o| matches!(o, OpSpec::Join { .. } | OpSpec::Union { .. }))
        })
        .expect("a case with a binary operator");
    let probed = std::cell::Cell::new(0usize);
    let small = minimize_with(&gen, |g| {
        let _ = g.spec.compile();
        probed.set(probed.get() + 1);
        !g.spec.ops.is_empty()
    });
    assert!(probed.get() > 1, "minimizer probed candidates");
    assert_eq!(small.spec.ops.len(), 1, "always-failing shrinks to one op");
    assert!(
        matches!(small.spec.ops[0], OpSpec::Read { .. }),
        "the one op left is the read"
    );
}

/// The emitted regression test is self-contained and round-trips its
/// dataset through NDJSON.
#[test]
fn regression_code_round_trips() {
    let gen = (0..100)
        .map(generate)
        .find(|g| g.dataset.rows() > 0 && g.spec.ops.len() >= 2)
        .expect("a populated case");
    let code = regression_code(&gen);
    assert!(code.contains("#[test]"));
    assert!(code.contains(&format!("fn oracle_seed_{}", gen.seed)));
    assert!(code.contains("DatasetSpec::from_ndjson"));
    assert!(code.contains("PipelineSpec {"));
    assert!(code.contains("assert_eq!(check(&gen), None)"));

    // The NDJSON payload embedded in the code reconstructs the dataset.
    let nd: Vec<(&str, String)> = gen
        .dataset
        .sources
        .iter()
        .map(|(name, items)| {
            let lines: Vec<String> = items
                .iter()
                .map(pebble_nested::json::item_to_string)
                .collect();
            (name.as_str(), lines.join("\n"))
        })
        .collect();
    let nd_ref: Vec<(&str, &str)> = nd.iter().map(|(n, s)| (*n, s.as_str())).collect();
    let round = DatasetSpec::from_ndjson(&nd_ref);
    assert_eq!(round, gen.dataset);
}
