//! Pinned differential repros (see `regressions/README.md`).
//!
//! Tests in this file are in exactly the shape `oracle_fuzz` emits for a
//! minimized divergence: an NDJSON dataset, a `PipelineSpec` literal, and
//! `assert_eq!(check(&gen), None)`. The fuzzer has not surfaced a real
//! divergence yet (seeds `0..5000` are clean), so the cases below are
//! hand-pinned edge cases in the same form — each one picked because the
//! construct historically differs between naive and optimized engines.

use pebble_oracle::{
    check, AggKind, CmpKind, ColSpec, DatasetSpec, Generated, LitSpec, OpSpec, PipelineSpec,
    PredSpec,
};

/// Flatten over an empty bag, a missing attribute, and a scalar mix:
/// rows that produce zero output each, in a chain that fuses.
#[test]
fn oracle_pinned_flatten_degenerate_collections() {
    let dataset = DatasetSpec::from_ndjson(&[(
        "t",
        "{\"k\": 1, \"xs\": []}\n{\"k\": 2, \"xs\": [10, 20]}\n{\"k\": 3}\n{\"k\": 4, \"xs\": [30]}",
    )]);
    let spec = PipelineSpec {
        ops: vec![
            OpSpec::Read { source: "t".into() },
            OpSpec::Flatten {
                input: 0,
                col: "xs".into(),
                new_attr: "x".into(),
            },
            OpSpec::Filter {
                input: 1,
                pred: PredSpec::Cmp {
                    path: "x".into(),
                    cmp: CmpKind::Gt,
                    lit: LitSpec::Int(10),
                },
            },
        ],
    };
    let gen = Generated {
        seed: 0,
        dataset,
        spec,
    };
    assert_eq!(check(&gen), None);
}

/// Self-union: the read is a multi-consumer node (fusion boundary), and
/// the union doubles every identifier lineage.
#[test]
fn oracle_pinned_self_union_multi_consumer() {
    let dataset = DatasetSpec::from_ndjson(&[("t", "{\"a\": 1}\n{\"a\": 2}\n{\"a\": 3}")]);
    let spec = PipelineSpec {
        ops: vec![
            OpSpec::Read { source: "t".into() },
            OpSpec::Filter {
                input: 0,
                pred: PredSpec::Cmp {
                    path: "a".into(),
                    cmp: CmpKind::Ge,
                    lit: LitSpec::Int(2),
                },
            },
            OpSpec::Union { left: 1, right: 1 },
            OpSpec::Select {
                input: 2,
                cols: vec![ColSpec::Path {
                    name: "b".into(),
                    path: "a".into(),
                }],
            },
        ],
    };
    let gen = Generated {
        seed: 0,
        dataset,
        spec,
    };
    assert_eq!(check(&gen), None);
}

/// Grouping with null keys, a group that aggregates only nulls, and both
/// whole-item nesting and scalar aggregates side by side.
#[test]
fn oracle_pinned_group_aggregate_null_keys() {
    let dataset = DatasetSpec::from_ndjson(&[(
        "t",
        "{\"k\": \"a\", \"v\": 1}\n{\"v\": 2}\n{\"k\": \"a\"}\n{\"k\": \"b\", \"v\": null}",
    )]);
    let spec = PipelineSpec {
        ops: vec![
            OpSpec::Read { source: "t".into() },
            OpSpec::GroupAgg {
                input: 0,
                keys: vec![("k".into(), "k".into())],
                aggs: vec![
                    (AggKind::Count, String::new(), "n".into()),
                    (AggKind::Sum, "v".into(), "total".into()),
                    (AggKind::CollectList, "v".into(), "vs".into()),
                    (AggKind::CollectList, String::new(), "items".into()),
                ],
            },
        ],
    };
    let gen = Generated {
        seed: 0,
        dataset,
        spec,
    };
    assert_eq!(check(&gen), None);
}

/// Join where one side has duplicate keys, null keys, and a renamed
/// right-hand key column in the merged schema.
#[test]
fn oracle_pinned_join_duplicate_and_null_keys() {
    let dataset = DatasetSpec::from_ndjson(&[
        (
            "l",
            "{\"k\": 1, \"lv\": \"a\"}\n{\"k\": 1, \"lv\": \"b\"}\n{\"lv\": \"c\"}",
        ),
        (
            "r",
            "{\"k\": 1, \"rv\": \"x\"}\n{\"k\": 2, \"rv\": \"y\"}\n{\"k\": null, \"rv\": \"z\"}",
        ),
    ]);
    let spec = PipelineSpec {
        ops: vec![
            OpSpec::Read { source: "l".into() },
            OpSpec::Read { source: "r".into() },
            OpSpec::Join {
                left: 0,
                right: 1,
                keys: vec![("k".into(), "k".into())],
            },
        ],
    };
    let gen = Generated {
        seed: 0,
        dataset,
        spec,
    };
    assert_eq!(check(&gen), None);
}

/// A pipeline whose sink is empty: every downstream structure (capture
/// tables, backtraces, partitioned runs) must agree on "nothing".
#[test]
fn oracle_pinned_empty_result() {
    let dataset = DatasetSpec::from_ndjson(&[("t", "{\"a\": 1}\n{\"a\": 2}")]);
    let spec = PipelineSpec {
        ops: vec![
            OpSpec::Read { source: "t".into() },
            OpSpec::Filter {
                input: 0,
                pred: PredSpec::Cmp {
                    path: "a".into(),
                    cmp: CmpKind::Gt,
                    lit: LitSpec::Int(100),
                },
            },
            OpSpec::GroupAgg {
                input: 1,
                keys: vec![("k".into(), "a".into())],
                aggs: vec![(AggKind::Count, String::new(), "n".into())],
            },
        ],
    };
    let gen = Generated {
        seed: 0,
        dataset,
        spec,
    };
    assert_eq!(check(&gen), None);
}
