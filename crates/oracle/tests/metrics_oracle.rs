//! Metrics-correctness sweep: the run report's per-operator row counters
//! and panic counters are cross-checked against the Tab. 5 reference
//! interpreter over generated pipelines, including malformed (panicking)
//! inputs where the report must still be produced up to the contained
//! error.

use pebble_dataflow::{run_observed, ExecConfig, NoSink, ObsConfig, OpKind, Program};
use pebble_oracle::{generate, generate_malformed, reference_config, run_reference};

/// Expected `rows_in` for operator `op` given every operator's output
/// counts: the source length for `read`, the sum of the producing
/// operators' outputs otherwise.
fn expected_rows_in(
    program: &Program,
    ctx: &pebble_dataflow::Context,
    op_counts: &[usize],
    op: usize,
) -> u64 {
    let operator = &program.operators()[op];
    match &operator.kind {
        OpKind::Read { source } => ctx.source(source).map_or(0, |s| s.len()) as u64,
        _ => operator
            .inputs
            .iter()
            .map(|&i| op_counts[i as usize] as u64)
            .sum(),
    }
}

/// 250 well-formed generated pipelines: the engine's report (metrics on,
/// multi-partition) must agree with the reference interpreter on every
/// operator's rows in and out, report zero UDF panics, and carry the
/// documented schema version.
#[test]
fn report_counters_match_reference_on_250_seeds() {
    for seed in 0..250u64 {
        let gen = generate(seed);
        let program = gen.spec.compile();
        let ctx = gen.dataset.context();

        let reference = run_reference(&program, &ctx).expect("reference run");
        let ref_counts = &reference.output.op_counts;

        for config in [reference_config(), ExecConfig::with_partitions(3)] {
            let (result, report) =
                run_observed(&program, &ctx, config, &NoSink, &ObsConfig::metrics());
            let output = result.unwrap_or_else(|e| panic!("seed {seed}: engine failed: {e}"));

            assert_eq!(report.schema_version, 2, "seed {seed}");
            assert_eq!(report.outcome, "ok", "seed {seed}");
            assert!(report.error.is_none(), "seed {seed}");
            assert!(report.metrics, "seed {seed}");
            assert_eq!(
                report.operators.len(),
                program.operators().len(),
                "seed {seed}"
            );
            assert_eq!(report.udf_panics(), 0, "seed {seed}: panics on clean run");
            assert_eq!(output.report().operators, report.operators, "seed {seed}");

            for (i, op) in report.operators.iter().enumerate() {
                assert_eq!(
                    op.rows_out, ref_counts[i] as u64,
                    "seed {seed}: op #{i} rows_out vs reference"
                );
                assert_eq!(
                    op.rows_in,
                    expected_rows_in(&program, &ctx, ref_counts, i),
                    "seed {seed}: op #{i} rows_in vs reference"
                );
                assert_eq!(op.udf_panics, 0, "seed {seed}: op #{i}");
            }
            assert!(report.morsels.executed > 0, "seed {seed}: no morsels");
            assert_eq!(
                report.morsels.executed,
                report.operators.iter().map(|o| o.morsels).sum::<u64>(),
                "seed {seed}: morsel total vs per-op morsel counts"
            );
        }
    }
}

/// 250 malformed (UDF-panicking) pipelines: the report is produced for
/// failing runs up to the contained error — full operator table, `error`
/// outcome with the pinned error text, and nonzero panic counters exactly
/// when the contained failure was a UDF panic. Cases whose injected panic
/// never fires must behave like clean runs.
#[test]
fn report_produced_for_250_malformed_seeds() {
    let mut failing = 0u32;
    for seed in 0..250u64 {
        let gen = generate_malformed(seed);
        let program = gen.spec.compile();
        let ctx = gen.dataset.context();
        let config = ExecConfig::with_partitions(2);

        let (result, report) = run_observed(&program, &ctx, config, &NoSink, &ObsConfig::metrics());

        assert_eq!(report.schema_version, 2, "seed {seed}");
        assert_eq!(
            report.operators.len(),
            program.operators().len(),
            "seed {seed}: failing runs still report the full operator table"
        );

        match result {
            Ok(_) => {
                assert_eq!(report.outcome, "ok", "seed {seed}");
                assert_eq!(report.udf_panics(), 0, "seed {seed}");
            }
            Err(err) => {
                failing += 1;
                assert_eq!(report.outcome, "error", "seed {seed}");
                assert_eq!(
                    report.error.as_deref(),
                    Some(err.to_string().as_str()),
                    "seed {seed}: report carries the contained error"
                );
                // Cross-check the panic counters against the error kind the
                // executor matrix pins: a contained UDF panic must be
                // counted on a UDF-capable operator, and vice versa.
                if err.to_string().contains("panicked") {
                    assert!(
                        report.udf_panics() >= 1,
                        "seed {seed}: panic error but zero panic counters"
                    );
                    for op in &report.operators {
                        if op.udf_panics > 0 {
                            assert!(op.udf, "seed {seed}: panic counted on non-UDF op");
                        }
                    }
                } else {
                    assert_eq!(
                        report.udf_panics(),
                        0,
                        "seed {seed}: non-panic failure must not count panics"
                    );
                }
            }
        }
    }
    assert!(
        failing >= 50,
        "malformed sweep degenerated: only {failing} failing cases"
    );
}
