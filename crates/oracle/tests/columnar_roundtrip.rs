//! Property tests for the `Vec<DataItem> ⇄ ColumnBatch` converters over the
//! oracle's seeded dataset generators.
//!
//! The columnar executor path is only sound if transposing a morsel into
//! [`ColumnBatch`] and back is lossless for every item shape the engine can
//! see: the deeply nested Twitter `user`/`entities` sub-trees, DBLP records
//! with `authors` bags, empty lists, missing attributes, and the corrupted
//! rows of the malformed-input axis. Losslessness is checked three ways —
//! structural equality, `Display`, and NDJSON rendering — because the
//! latter two are what downstream consumers actually compare.

use pebble_nested::{json, ColumnBatch, DataItem};
use pebble_oracle::gen::{generate, generate_malformed};
use pebble_workloads::{fuzz_dblp_context, fuzz_twitter_context};

/// Asserts `ColumnBatch::from_items` round-trips `items` losslessly through
/// both the borrowing (`to_items`) and consuming (`into_items`) converters.
fn assert_roundtrip(what: &str, items: &[DataItem]) {
    let batch = ColumnBatch::from_items(items);
    assert_eq!(batch.len(), items.len(), "{what}: row count");
    let back = batch.to_items();
    for (i, (orig, got)) in items.iter().zip(&back).enumerate() {
        assert_eq!(orig, got, "{what}: row {i} differs structurally");
        assert_eq!(
            orig.to_string(),
            got.to_string(),
            "{what}: row {i} Display differs"
        );
        assert_eq!(
            json::item_to_string(orig),
            json::item_to_string(got),
            "{what}: row {i} NDJSON differs"
        );
    }
    assert_eq!(batch.into_items(), items, "{what}: into_items differs");
}

#[test]
fn twitter_datasets_roundtrip() {
    for seed in 0..40u64 {
        let rows = 8 + (seed as usize % 21);
        let ctx = fuzz_twitter_context(seed, rows);
        assert_roundtrip(
            &format!("twitter seed {seed}"),
            ctx.source("tweets").unwrap(),
        );
    }
}

#[test]
fn dblp_datasets_roundtrip() {
    for seed in 0..40u64 {
        let records = 30 + (seed as usize % 31);
        let ctx = fuzz_dblp_context(seed, records);
        for source in pebble_workloads::fuzz::DBLP_SOURCES {
            assert_roundtrip(
                &format!("dblp seed {seed} source {source}"),
                ctx.source(source).unwrap(),
            );
        }
    }
}

/// The generator's full dataset mix — including the datasets whose
/// pipelines the differential oracle replays — round-trips too.
#[test]
fn generated_datasets_roundtrip() {
    for seed in 0..60u64 {
        let gen = generate(seed);
        for (name, items) in &gen.dataset.sources {
            assert_roundtrip(&format!("gen seed {seed} source {name}"), items);
        }
    }
}

/// Corrupted datasets from the malformed-input axis (type confusion,
/// truncated records, missing attributes) must round-trip unchanged as
/// well: the columnar planner may *reject* a program over them, but the
/// representation itself is shape-agnostic.
#[test]
fn malformed_datasets_roundtrip() {
    for seed in 0..60u64 {
        let gen = generate_malformed(seed);
        for (name, items) in &gen.dataset.sources {
            assert_roundtrip(&format!("malformed seed {seed} source {name}"), items);
        }
    }
}

/// Degenerate shapes the generators may not always hit: empty batches,
/// items with no attributes, and single-row batches.
#[test]
fn degenerate_shapes_roundtrip() {
    assert_roundtrip("empty batch", &[]);
    assert_roundtrip("single empty item", &[DataItem::new()]);
    let mixed = vec![
        DataItem::new(),
        DataItem::from_fields([("a", pebble_nested::Value::Bag(Vec::new()))]),
        DataItem::from_fields([("b", pebble_nested::Value::Null)]),
    ];
    assert_roundtrip("degenerate mix", &mixed);
}
