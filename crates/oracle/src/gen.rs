//! Seeded random pipeline + dataset generator.
//!
//! Each seed deterministically yields a small dataset (Twitter- or
//! DBLP-shaped, from `pebble-workloads`) and a pipeline over it. The
//! generator is *schema-aware*: it tracks the value-level schema of the
//! growing pipeline's frontier and draws filter/select/flatten/join/group
//! paths from [`DataType::typed_paths`], so most generated programs
//! type-check — while deliberately keeping sometimes-missing positional
//! paths (`entities.media[2].type`) and rarely-matching predicates in the
//! mix, because missing-path and empty-output behavior is exactly where
//! engines diverge.
//!
//! After an opaque `map` (which declares no output schema, so the engine
//! falls back to the wildcard schema) the generator keeps its own effective
//! schema to continue drawing valid paths, and stops generating
//! `join`/`union` whose static schema handling would differ.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pebble_nested::{DataItem, DataType, Path, Step};

use crate::spec::{
    AggKind, CmpKind, ColSpec, DatasetSpec, LitSpec, OpSpec, PipelineSpec, PredSpec, UdfSpec,
};

/// A generated differential-test case.
#[derive(Clone, Debug, PartialEq)]
pub struct Generated {
    /// The seed that produced it (also seeds backtrace sampling).
    pub seed: u64,
    /// The concrete dataset.
    pub dataset: DatasetSpec,
    /// The pipeline.
    pub spec: PipelineSpec,
}

/// String needles likely (and sometimes unlikely) to occur per family.
const TWITTER_NEEDLES: &[&str] = &["good", "BTS", "@u", "User", "en", "photo", "City", "zzz"];
const DBLP_NEEDLES: &[&str] = &["Author", "conf/", "Paper", "Publisher", "A.", "Conf", "zzz"];
const INT_POOL: &[i64] = &[0, 1, 2, 3, 7, 100, 500, 2012, 2015, 50_000];

struct Gen {
    rng: StdRng,
    needles: &'static [&'static str],
    /// Effective value-level schema per spec op.
    schemas: Vec<DataType>,
    ops: Vec<OpSpec>,
    /// Rough output-size estimate, to keep fan-out bounded.
    est_rows: f64,
    /// An opaque map happened somewhere upstream of the frontier.
    opaque: bool,
    fresh: usize,
}

/// Generates the test case for one seed.
pub fn generate(seed: u64) -> Generated {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed);
    let (dataset, needles) = if rng.gen_bool(0.5) {
        let rows = rng.gen_range(8..28);
        let ctx = pebble_workloads::fuzz_twitter_context(rng.next_u64(), rows);
        let sources = vec![("tweets".to_string(), ctx.source("tweets").unwrap().to_vec())];
        (DatasetSpec { sources }, TWITTER_NEEDLES)
    } else {
        let records = rng.gen_range(30..90);
        let ctx = pebble_workloads::fuzz_dblp_context(rng.next_u64(), records);
        let sources = pebble_workloads::fuzz::DBLP_SOURCES
            .iter()
            .map(|s| (s.to_string(), ctx.source(s).unwrap().to_vec()))
            .collect();
        (DatasetSpec { sources }, DBLP_NEEDLES)
    };

    let mut g = Gen {
        rng,
        needles,
        schemas: Vec::new(),
        ops: Vec::new(),
        est_rows: 0.0,
        opaque: false,
        fresh: 0,
    };
    g.grow(&dataset);
    Generated {
        seed,
        dataset,
        spec: PipelineSpec { ops: g.ops },
    }
}

/// Infers the schema a source registers with (the engine's own sampling
/// inference).
fn source_schema(items: &[DataItem]) -> DataType {
    pebble_dataflow::context::infer_schema(items)
}

/// Deterministically corrupts the valid case for `seed` into a
/// malformed-input case: a panicking UDF appended to the pipeline, or an
/// operator path rewritten to something that cannot resolve. The result
/// fails at validation, fails at runtime, or — when the corruption is
/// harmless for this dataset — still succeeds; in every outcome the pool
/// and spawn executors must agree exactly (see
/// [`crate::diff::check_malformed`]).
pub fn generate_malformed(seed: u64) -> Generated {
    let mut gen = generate(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6d61_6c66_6f72_6d31);
    let frontier = gen.spec.ops.len() - 1;
    match rng.gen_range(0..4u32) {
        // A UDF that panics on the first row it sees.
        0 => gen.spec.ops.push(OpSpec::Map {
            input: frontier,
            udf: UdfSpec::PanicAlways {
                message: format!("injected failure for seed {seed}"),
            },
        }),
        // A UDF that panics only on rows containing a common substring —
        // a partial failure, possibly none at all.
        1 => {
            let needle = ["a", "e", "1", "zzz"][rng.gen_range(0..4usize)];
            gen.spec.ops.push(OpSpec::Map {
                input: frontier,
                udf: UdfSpec::PanicOnNeedle {
                    needle: needle.into(),
                },
            });
        }
        // A flatten whose collection path cannot resolve: the static
        // layer must reject it, identically in every executor.
        2 => gen.spec.ops.push(OpSpec::Flatten {
            input: frontier,
            col: "__corrupt__".into(),
            new_attr: "x".into(),
        }),
        // Corrupt a path inside an existing operator.
        _ => corrupt_existing_path(&mut gen.spec, &mut rng),
    }
    gen
}

/// Rewrites one path of a path-bearing operator to an unresolvable name,
/// falling back to an unresolvable flatten when the pipeline has none.
fn corrupt_existing_path(spec: &mut PipelineSpec, rng: &mut StdRng) {
    let n = spec.ops.len();
    let start = rng.gen_range(0..n);
    for off in 0..n {
        match &mut spec.ops[(start + off) % n] {
            OpSpec::Flatten { col, .. } => {
                *col = "__corrupt__".into();
                return;
            }
            OpSpec::Select { cols, .. } => {
                if let Some(ColSpec::Path { path, .. }) = cols.first_mut() {
                    *path = "__corrupt__".into();
                    return;
                }
            }
            OpSpec::GroupAgg { keys, .. } => {
                if let Some((_, path)) = keys.first_mut() {
                    *path = "__corrupt__".into();
                    return;
                }
            }
            OpSpec::Join { keys, .. } => {
                if let Some((left, _)) = keys.first_mut() {
                    *left = "__corrupt__".into();
                    return;
                }
            }
            _ => {}
        }
    }
    let frontier = spec.ops.len() - 1;
    spec.ops.push(OpSpec::Flatten {
        input: frontier,
        col: "__corrupt__".into(),
        new_attr: "x".into(),
    });
}

impl Gen {
    fn grow(&mut self, dataset: &DatasetSpec) {
        // Start: read a random source.
        let start = self.rng.gen_range(0..dataset.sources.len());
        let (name, items) = &dataset.sources[start];
        self.push(
            OpSpec::Read {
                source: name.clone(),
            },
            source_schema(items),
        );
        self.est_rows = items.len() as f64;

        let steps = self.rng.gen_range(1..=6usize);
        for _ in 0..steps {
            // A handful of attempts per step; unlucky draws (no candidate
            // paths, schema rejection) skip the step.
            for _attempt in 0..8 {
                if self.try_step(dataset) {
                    break;
                }
            }
        }
        // A pipeline must transform at least once; fall back to a trivial
        // always-true filter when every step failed.
        if self.ops.len() == 1 {
            let frontier = self.frontier();
            let schema = self.schemas[frontier].clone();
            self.push(
                OpSpec::Filter {
                    input: frontier,
                    pred: PredSpec::Not(Box::new(PredSpec::Cmp {
                        path: "nonexistent_attr".into(),
                        cmp: CmpKind::Eq,
                        lit: LitSpec::Int(0),
                    })),
                },
                schema,
            );
        }
    }

    fn frontier(&self) -> usize {
        self.ops.len() - 1
    }

    fn push(&mut self, op: OpSpec, schema: DataType) {
        self.ops.push(op);
        self.schemas.push(schema);
    }

    /// Validates `op` against the effective input schemas via the engine's
    /// own static typing, pushing it (with its output schema) on success.
    fn try_push(&mut self, op: OpSpec) -> bool {
        // Compile just this operator to reuse `OpKind::output_schema`.
        let spec = PipelineSpec {
            ops: {
                let mut ops = self.ops.clone();
                ops.push(op.clone());
                ops
            },
        };
        let program = spec.compile();
        let kind = &program.operators().last().unwrap().kind;
        let inputs: Vec<DataType> = op
            .inputs()
            .iter()
            .map(|&i| self.schemas[i].clone())
            .collect();
        match kind.output_schema(self.ops.len() as u32, &inputs) {
            Ok(schema) => {
                self.push(op, schema);
                true
            }
            Err(_) => false,
        }
    }

    /// Scalar-typed paths of the frontier schema, with `[pos]` steps
    /// occasionally materialized to concrete (possibly out-of-range)
    /// positions.
    fn scalar_paths(&mut self, schema: &DataType) -> Vec<(Path, DataType)> {
        let mut out = Vec::new();
        for (p, ty) in schema.typed_paths() {
            let scalar = matches!(
                ty,
                DataType::Int | DataType::Str | DataType::Bool | DataType::Double
            );
            if !scalar {
                continue;
            }
            if p.steps().iter().any(|s| matches!(s, Step::AnyPos)) {
                if self.rng.gen_bool(0.25) {
                    let pos = self.rng.gen_range(1..=2u32);
                    let steps: Vec<Step> = p
                        .steps()
                        .iter()
                        .map(|s| match s {
                            Step::AnyPos => Step::Pos(pos),
                            other => other.clone(),
                        })
                        .collect();
                    out.push((Path::new(steps), ty));
                }
            } else {
                out.push((p, ty));
            }
        }
        out
    }

    /// Collection-typed paths reachable without crossing a collection.
    fn collection_paths(&self, schema: &DataType) -> Vec<(Path, DataType)> {
        schema
            .typed_paths()
            .into_iter()
            .filter(|(p, ty)| {
                ty.is_collection() && !p.steps().iter().any(|s| matches!(s, Step::AnyPos))
            })
            .collect()
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            let i = self.rng.gen_range(0..xs.len());
            Some(&xs[i])
        }
    }

    fn fresh_name(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!("{prefix}{}", self.fresh)
    }

    fn try_step(&mut self, dataset: &DatasetSpec) -> bool {
        let frontier = self.frontier();
        let schema = self.schemas[frontier].clone();
        let roll = self.rng.gen_range(0..100u32);
        match roll {
            0..=24 => self.gen_filter(frontier, &schema),
            25..=44 => self.gen_select(frontier, &schema),
            45..=59 => self.gen_flatten(frontier, &schema),
            60..=74 => self.gen_group(frontier, &schema),
            75..=84 => self.gen_join(frontier, &schema, dataset),
            85..=92 => self.gen_union(frontier),
            _ => self.gen_map(frontier, &schema),
        }
    }

    fn gen_literal(&mut self, ty: &DataType) -> LitSpec {
        match ty {
            DataType::Int => LitSpec::Int(*self.pick(INT_POOL).unwrap()),
            DataType::Double => LitSpec::Double([0.0, 1.5, -10.0][self.rng.gen_range(0..3usize)]),
            DataType::Bool => LitSpec::Bool(self.rng.gen_bool(0.5)),
            _ => LitSpec::Str(self.pick(self.needles).unwrap().to_string()),
        }
    }

    fn gen_pred(&mut self, schema: &DataType, depth: usize) -> Option<PredSpec> {
        if depth > 0 && self.rng.gen_bool(0.2) {
            let a = Box::new(self.gen_pred(schema, depth - 1)?);
            let b = Box::new(self.gen_pred(schema, depth - 1)?);
            return Some(if self.rng.gen_bool(0.5) {
                PredSpec::And(a, b)
            } else {
                PredSpec::Or(a, b)
            });
        }
        let candidates = self.scalar_paths(schema);
        let (path, ty) = self.pick(&candidates)?.clone();
        let path = path.to_string();
        let base = if matches!(ty, DataType::Str) && self.rng.gen_bool(0.6) {
            PredSpec::Contains {
                path,
                needle: self.gen_literal(&ty),
            }
        } else {
            let cmp = [
                CmpKind::Eq,
                CmpKind::Ne,
                CmpKind::Lt,
                CmpKind::Le,
                CmpKind::Gt,
                CmpKind::Ge,
            ][self.rng.gen_range(0..6usize)];
            PredSpec::Cmp {
                path,
                cmp,
                lit: self.gen_literal(&ty),
            }
        };
        Some(if self.rng.gen_bool(0.15) {
            PredSpec::Not(Box::new(base))
        } else {
            base
        })
    }

    fn gen_filter(&mut self, frontier: usize, schema: &DataType) -> bool {
        let Some(pred) = self.gen_pred(schema, 1) else {
            return false;
        };
        self.est_rows *= 0.6;
        self.try_push(OpSpec::Filter {
            input: frontier,
            pred,
        })
    }

    fn gen_select(&mut self, frontier: usize, schema: &DataType) -> bool {
        // Draw from every typed path (scalars, collections, sub-items) so
        // selects re-root nested values, not just scalars.
        let typed: Vec<(Path, DataType)> = schema
            .typed_paths()
            .into_iter()
            .filter(|(p, _)| !p.steps().iter().any(|s| matches!(s, Step::AnyPos)))
            .collect();
        if typed.is_empty() {
            return false;
        }
        let n = self.rng.gen_range(1..=4usize.min(typed.len()));
        let mut cols = Vec::with_capacity(n);
        for i in 0..n {
            let (p, _) = self.pick(&typed).unwrap().clone();
            if self.rng.gen_bool(0.15) && typed.len() >= 2 {
                let (q, _) = self.pick(&typed).unwrap().clone();
                cols.push(ColSpec::Struct {
                    name: format!("s{i}"),
                    fields: vec![("a".into(), p.to_string()), ("b".into(), q.to_string())],
                });
            } else {
                cols.push(ColSpec::Path {
                    name: format!("c{i}"),
                    path: p.to_string(),
                });
            }
        }
        self.try_push(OpSpec::Select {
            input: frontier,
            cols,
        })
    }

    fn gen_flatten(&mut self, frontier: usize, schema: &DataType) -> bool {
        if self.est_rows > 800.0 {
            return false;
        }
        let candidates = self.collection_paths(schema);
        let Some((col, _)) = self.pick(&candidates).cloned() else {
            return false;
        };
        let new_attr = self.fresh_name("x");
        self.est_rows *= 2.5;
        self.try_push(OpSpec::Flatten {
            input: frontier,
            col: col.to_string(),
            new_attr,
        })
    }

    fn gen_group(&mut self, frontier: usize, schema: &DataType) -> bool {
        let scalars = self.scalar_paths(schema);
        if scalars.is_empty() {
            return false;
        }
        let nk = self.rng.gen_range(1..=2usize);
        let mut keys = Vec::with_capacity(nk);
        for i in 0..nk {
            let (p, _) = self.pick(&scalars).unwrap().clone();
            keys.push((format!("k{i}"), p.to_string()));
        }
        let na = self.rng.gen_range(1..=3usize);
        let mut aggs = Vec::with_capacity(na);
        for i in 0..na {
            let out = format!("a{i}");
            let roll = self.rng.gen_range(0..100u32);
            if roll < 15 {
                aggs.push((AggKind::Count, String::new(), out)); // count(*)
            } else if roll < 28 {
                aggs.push((AggKind::CollectList, String::new(), out)); // nest
            } else {
                let (p, ty) = self.pick(&scalars).unwrap().clone();
                let numeric = matches!(ty, DataType::Int | DataType::Double);
                let kind = if numeric {
                    [
                        AggKind::Sum,
                        AggKind::Min,
                        AggKind::Max,
                        AggKind::Avg,
                        AggKind::Count,
                        AggKind::CollectList,
                        AggKind::CollectSet,
                    ][self.rng.gen_range(0..7usize)]
                } else {
                    [
                        AggKind::Min,
                        AggKind::Max,
                        AggKind::Count,
                        AggKind::CollectList,
                        AggKind::CollectSet,
                    ][self.rng.gen_range(0..5usize)]
                };
                aggs.push((kind, p.to_string(), out));
            }
        }
        self.est_rows *= 0.3;
        self.try_push(OpSpec::GroupAgg {
            input: frontier,
            keys,
            aggs,
        })
    }

    fn gen_join(&mut self, frontier: usize, schema: &DataType, dataset: &DatasetSpec) -> bool {
        if self.opaque || self.est_rows > 400.0 {
            return false;
        }
        let src = self.rng.gen_range(0..dataset.sources.len());
        let (src_name, items) = &dataset.sources[src];
        let right_schema = source_schema(items);
        // Key pairs: same scalar type on both sides.
        let left_scalars = self.scalar_paths(schema);
        let right_scalars = self.scalar_paths(&right_schema);
        let mut pairs: Vec<(String, String)> = Vec::new();
        for _ in 0..20 {
            let Some((lp, lt)) = self.pick(&left_scalars).cloned() else {
                break;
            };
            let same_ty: Vec<(Path, DataType)> = right_scalars
                .iter()
                .filter(|(_, rt)| *rt == lt)
                .cloned()
                .collect();
            if let Some((rp, _)) = self.pick(&same_ty).cloned() {
                pairs.push((lp.to_string(), rp.to_string()));
                break;
            }
        }
        if pairs.is_empty() {
            return false;
        }
        let read_idx = self.ops.len();
        self.push(
            OpSpec::Read {
                source: src_name.clone(),
            },
            right_schema,
        );
        self.est_rows *= 3.0;
        if self.try_push(OpSpec::Join {
            left: frontier,
            right: read_idx,
            keys: pairs,
        }) {
            true
        } else {
            // Roll back the dangling read.
            self.ops.pop();
            self.schemas.pop();
            false
        }
    }

    fn gen_union(&mut self, frontier: usize) -> bool {
        if self.opaque || self.est_rows > 800.0 {
            return false;
        }
        // Self-union: the frontier becomes a multi-consumer node, which
        // also exercises the engine's fusion-boundary logic.
        self.est_rows *= 2.0;
        self.try_push(OpSpec::Union {
            left: frontier,
            right: frontier,
        })
    }

    fn gen_map(&mut self, frontier: usize, schema: &DataType) -> bool {
        let udf = if self.rng.gen_bool(0.5) {
            UdfSpec::Identity
        } else {
            UdfSpec::TagInt {
                attr: self.fresh_name("tag"),
                value: self.rng.gen_range(0..1000) as i64,
            }
        };
        // Effective schema: the engine records the wildcard (`⊥` schema),
        // but the generator knows what the UDF really does.
        let effective = match &udf {
            UdfSpec::Identity => schema.clone(),
            UdfSpec::TagInt { attr, .. } => match schema {
                DataType::Item(fields) => {
                    let mut fields = fields.clone();
                    fields.push(pebble_nested::Field::new(attr.clone(), DataType::Int));
                    DataType::Item(fields)
                }
                other => other.clone(),
            },
            // The valid generator never draws panicking UDFs; they come
            // from `generate_malformed` only.
            UdfSpec::PanicAlways { .. } | UdfSpec::PanicOnNeedle { .. } => schema.clone(),
        };
        self.ops.push(OpSpec::Map {
            input: frontier,
            udf,
        });
        self.schemas.push(effective);
        self.opaque = true;
        true
    }
}
