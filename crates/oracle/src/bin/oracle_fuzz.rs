//! Differential fuzzing driver.
//!
//! ```text
//! oracle_fuzz [COUNT] [START_SEED]
//! ```
//!
//! Generates `COUNT` (default 200) pipeline/dataset cases starting at
//! `START_SEED` (default 0), runs every differential check, and exits
//! non-zero if any case diverges — after printing the minimized repro as a
//! ready-to-paste regression test. CI runs this with fixed seeds as a
//! bounded smoke.

use std::process::ExitCode;

use pebble_oracle::{check, fuzz, generate, minimize, regression_code};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let count: u64 = args
        .next()
        .map(|a| a.parse().expect("COUNT is a number"))
        .unwrap_or(200);
    let start: u64 = args
        .next()
        .map(|a| a.parse().expect("START_SEED is a number"))
        .unwrap_or(0);

    println!("oracle_fuzz: checking {count} generated pipelines from seed {start}");
    let outcome = fuzz(start, count, 5);
    println!("checked {} cases", outcome.checked);
    for seed in (start..start + count).step_by((count as usize / 8).max(1)) {
        let g = generate(seed);
        println!(
            "  e.g. seed {seed}: {} ({} input rows)",
            g.spec.describe(),
            g.dataset.rows()
        );
    }
    if outcome.divergences.is_empty() {
        println!("no divergences");
        return ExitCode::SUCCESS;
    }
    for (gen, div) in &outcome.divergences {
        eprintln!("DIVERGENCE {div}");
        eprintln!("  pipeline: {}", gen.spec.describe());
    }
    let (first, div) = &outcome.divergences[0];
    eprintln!("\nminimizing seed {} ({})...", first.seed, div.check);
    let small = minimize(first);
    let now = check(&small).map_or_else(|| "no longer diverges?!".to_string(), |d| d.to_string());
    eprintln!(
        "minimized to {} operators / {} rows: {now}",
        small.spec.ops.len(),
        small.dataset.rows()
    );
    eprintln!("\n--- ready-to-paste regression (crates/oracle/tests/regressions.rs) ---\n");
    eprintln!("{}", regression_code(&small));
    ExitCode::FAILURE
}
