//! Differential fuzzing driver.
//!
//! ```text
//! oracle_fuzz [COUNT] [START_SEED] [MODE]
//! ```
//!
//! Generates `COUNT` (default 200) pipeline/dataset cases starting at
//! `START_SEED` (default 0), runs every differential check, and exits
//! non-zero if any case diverges — after printing the minimized repro as a
//! ready-to-paste regression test. CI runs this with fixed seeds as a
//! bounded smoke.
//!
//! `MODE` selects the axis: `valid` (default) checks well-formed cases
//! against the reference interpreter; `malformed` corrupts each case
//! (panicking UDFs, unresolvable paths) and checks that every engine
//! executor agrees on the failing outcome; `backends` runs the why-not +
//! semiring capture backends against their naive oracle references (on
//! both well-formed and corrupted cases, with malformed queries every
//! seed); `all` runs everything.

use std::process::ExitCode;

use pebble_oracle::{
    check, check_backends, check_backends_malformed, check_malformed, fuzz, fuzz_backends,
    fuzz_backends_malformed, fuzz_malformed, generate, generate_malformed, minimize_with,
    regression_code, FuzzOutcome, Generated,
};

fn report(
    axis: &str,
    outcome: &FuzzOutcome,
    checker: impl Fn(&Generated) -> Option<pebble_oracle::Divergence>,
) -> bool {
    println!("checked {} {axis} cases", outcome.checked);
    if outcome.divergences.is_empty() {
        println!("no {axis} divergences");
        return true;
    }
    for (gen, div) in &outcome.divergences {
        eprintln!("DIVERGENCE {div}");
        eprintln!("  pipeline: {}", gen.spec.describe());
    }
    let (first, div) = &outcome.divergences[0];
    eprintln!("\nminimizing seed {} ({})...", first.seed, div.check);
    let small = minimize_with(first, |g| checker(g).is_some());
    let now = checker(&small).map_or_else(|| "no longer diverges?!".to_string(), |d| d.to_string());
    eprintln!(
        "minimized to {} operators / {} rows: {now}",
        small.spec.ops.len(),
        small.dataset.rows()
    );
    eprintln!("\n--- ready-to-paste regression (crates/oracle/tests/regressions.rs) ---\n");
    eprintln!("{}", regression_code(&small));
    false
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let count: u64 = args
        .next()
        .map(|a| a.parse().expect("COUNT is a number"))
        .unwrap_or(200);
    let start: u64 = args
        .next()
        .map(|a| a.parse().expect("START_SEED is a number"))
        .unwrap_or(0);
    let mode: String = args.next().unwrap_or_else(|| "valid".to_string());
    let (run_valid, run_malformed, run_backends) = match mode.as_str() {
        "valid" => (true, false, false),
        "malformed" => (false, true, false),
        "backends" => (false, false, true),
        "all" => (true, true, true),
        other => {
            eprintln!("unknown MODE `{other}` (expected valid | malformed | backends | all)");
            return ExitCode::FAILURE;
        }
    };

    let mut ok = true;
    if run_valid {
        println!("oracle_fuzz: checking {count} generated pipelines from seed {start}");
        let outcome = fuzz(start, count, 5);
        for seed in (start..start + count).step_by((count as usize / 8).max(1)) {
            let g = generate(seed);
            println!(
                "  e.g. seed {seed}: {} ({} input rows)",
                g.spec.describe(),
                g.dataset.rows()
            );
        }
        ok &= report("valid", &outcome, check);
    }
    if run_malformed {
        // Malformed cases contain UDFs that panic on purpose; the engine
        // contains every panic, but the default hook would still print a
        // backtrace per contained panic. Real failures surface as
        // divergence values, not panics, so silence the hook.
        std::panic::set_hook(Box::new(|_| {}));
        println!("oracle_fuzz: checking {count} malformed pipelines from seed {start}");
        let outcome = fuzz_malformed(start, count, 5);
        for seed in (start..start + count).step_by((count as usize / 8).max(1)) {
            let g = generate_malformed(seed);
            println!(
                "  e.g. seed {seed}: {} ({} input rows)",
                g.spec.describe(),
                g.dataset.rows()
            );
        }
        ok &= report("malformed", &outcome, check_malformed);
    }
    if run_backends {
        // Backend checks run malformed pipelines too; silence the panic
        // hook for the contained UDF panics (see above).
        std::panic::set_hook(Box::new(|_| {}));
        println!("oracle_fuzz: checking {count} backend cases (valid) from seed {start}");
        ok &= report(
            "backends-valid",
            &fuzz_backends(start, count, 5),
            check_backends,
        );
        println!("oracle_fuzz: checking {count} backend cases (malformed) from seed {start}");
        ok &= report(
            "backends-malformed",
            &fuzz_backends_malformed(start, count, 5),
            check_backends_malformed,
        );
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
