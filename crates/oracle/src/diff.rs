//! The differential runner.
//!
//! For one generated test case, [`check`] executes the pipeline on the
//! Tab. 5 reference interpreter and on the optimized engine in several
//! configurations, and compares everything the two are required to agree
//! on:
//!
//! * **bit-for-bit at `partitions: 1`** — output rows *with identifiers*,
//!   per-operator row counts and schemas, and the complete operator
//!   provenance (independently derived `A`/`M` sets and the captured
//!   association tables) of the reference vs the fused engine vs the
//!   unfused engine;
//! * **capture-transparent** — a plain (no-capture) run returns the same
//!   rows as the captured run;
//! * **scheduler-invariant** — the legacy per-operator spawning executor
//!   ([`run_captured_spawn`]) and the morsel-driven pool scheduler at
//!   worker counts {2, 7} (with forced tiny morsels) agree bit-for-bit
//!   with the `workers: 1` run;
//! * **partition-invariant** — at `partitions: 2` and `7` the engine's
//!   item sequence and operator counts are unchanged (identifiers may
//!   differ);
//! * **columnar-invariant** — the vectorized columnar kernels
//!   ([`ExecConfig::columnar`]) reproduce the row path bit-for-bit (rows,
//!   ids, association tables) at worker counts {1, 2, 7} and at every
//!   partition count;
//! * **spill-invariant** — under a one-byte memory budget
//!   ([`ExecConfig::mem_budget`]) every operator output, grace-join
//!   bucket, shuffle partition, and capture association table goes
//!   through disk, and the run is still bit-identical to the in-memory
//!   capture (checked at `w=1`, `w=2` with tiny morsels, and columnar),
//!   with real spill traffic reported whenever rows flowed;
//! * **backtrace-equivalent** — for sampled output items (whole-item
//!   trees over [`Path::path_set`]) and one tree-pattern query, the
//!   backtracing results agree bit-for-bit across reference / fused /
//!   unfused at `partitions: 1`, and modulo identifiers (via
//!   [`canonical_provenance`]) across partition counts;
//! * **store-equivalent** — every captured run round-trips through the
//!   persistent segment format (`pebble_serve::persist` → cold-open
//!   `ProvStore::from_bytes`): the decoded association tables, rows, and
//!   schemas are bit-identical, and every backtrace question answered
//!   from the store matches the in-memory answer byte for byte.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pebble_core::{
    backtrace, canonical_provenance, run_captured, run_captured_spawn, run_captured_unfused,
    Backtrace, CapturedRun, PatternNode, ProvTree, TreePattern,
};
use pebble_dataflow::{run, Context, EngineError, ExecConfig, NoSink, Program, Row};
use pebble_nested::Path;

use crate::gen::Generated;
use crate::interp::{reference_config, run_reference};

/// Partition counts the engine is additionally exercised at (compared
/// modulo identifiers).
pub const ALT_PARTITIONS: [usize; 2] = [2, 7];

/// Worker counts the morsel-driven scheduler is additionally exercised at
/// (compared **bit-for-bit**: the scheduler specifies identical ids and
/// provenance at every worker count). Together with the `workers(1)`
/// baseline this covers worker counts {1, 2, 7}.
pub const ALT_WORKERS: [usize; 2] = [2, 7];

/// Morsel length forced for the [`ALT_WORKERS`] runs. Generated datasets
/// are small, so an automatic morsel size would fall back to the inline
/// fast path; a tiny explicit morsel forces real pool dispatch with many
/// morsels per partition, exercising the stitcher's offset patching.
const ALT_WORKER_MORSEL: usize = 3;

/// How many output items get a whole-item backtrace comparison.
const BACKTRACE_SAMPLES: usize = 3;

/// Memory budget (bytes) for the out-of-core axis. One byte forces every
/// operator output, grace-join bucket, shuffle partition, and capture
/// association table through the spill path deterministically — there is
/// no budget race, every eligible allocation spills.
const SPILL_BUDGET: usize = 1;

/// One disagreement between the reference and the engine (or between two
/// engine configurations).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Seed of the generated case.
    pub seed: u64,
    /// Which comparison failed.
    pub check: String,
    /// Short human-readable description of the disagreement.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[seed {}] {}: {}", self.seed, self.check, self.detail)
    }
}

fn diverge(seed: u64, check: &str, detail: String) -> Option<Divergence> {
    Some(Divergence {
        seed,
        check: check.to_string(),
        detail,
    })
}

/// Truncates long debug output so divergence reports stay readable.
fn trunc(s: String) -> String {
    const MAX: usize = 600;
    if s.len() <= MAX {
        s
    } else {
        let cut = (0..=MAX).rev().find(|&i| s.is_char_boundary(i)).unwrap();
        format!("{}… ({} bytes)", &s[..cut], s.len())
    }
}

/// Compares two captured runs bit-for-bit (rows with ids, counts, schemas,
/// full operator provenance).
fn compare_captured(
    seed: u64,
    check: &str,
    a: &CapturedRun,
    b: &CapturedRun,
) -> Option<Divergence> {
    if a.output.op_counts != b.output.op_counts {
        return diverge(
            seed,
            check,
            format!(
                "op_counts {:?} vs {:?}",
                a.output.op_counts, b.output.op_counts
            ),
        );
    }
    if a.output.op_schemas != b.output.op_schemas {
        return diverge(
            seed,
            check,
            trunc(format!(
                "op_schemas {:?} vs {:?}",
                a.output.op_schemas, b.output.op_schemas
            )),
        );
    }
    if a.output.rows != b.output.rows {
        let at = a
            .output
            .rows
            .iter()
            .zip(&b.output.rows)
            .position(|(x, y)| x != y)
            .map_or_else(
                || format!("lengths {} vs {}", a.output.rows.len(), b.output.rows.len()),
                |i| {
                    trunc(format!(
                        "row {i}: {:?} vs {:?}",
                        a.output.rows[i], b.output.rows[i]
                    ))
                },
            );
        return diverge(seed, check, format!("output rows differ: {at}"));
    }
    for (oa, ob) in a.ops.iter().zip(&b.ops) {
        if oa != ob {
            return diverge(
                seed,
                check,
                trunc(format!("op {} provenance: {:?} vs {:?}", oa.oid, oa, ob)),
            );
        }
    }
    None
}

/// Compares two whole run *outcomes*: bit-for-bit captured runs when both
/// succeed, `Display`-identical engine errors when both fail, and a
/// divergence when one side succeeds while the other does not. This is
/// the executor-agreement contract on malformed inputs — a failing run is
/// part of the observable semantics, so executors must fail identically.
fn same_outcome(
    seed: u64,
    check: &str,
    a: &Result<CapturedRun, EngineError>,
    b: &Result<CapturedRun, EngineError>,
) -> Option<Divergence> {
    match (a, b) {
        (Ok(x), Ok(y)) => compare_captured(seed, check, x, y),
        (Err(x), Err(y)) => {
            if x.to_string() == y.to_string() {
                None
            } else {
                diverge(seed, check, format!("errors differ: `{x}` vs `{y}`"))
            }
        }
        (Ok(_), Err(e)) => diverge(seed, check, format!("first succeeds, second errors ({e})")),
        (Err(e), Ok(_)) => diverge(seed, check, format!("first errors ({e}), second succeeds")),
    }
}

/// Compares row *items* in sequence, ignoring identifiers (the partition
/// invariance contract).
fn compare_items(seed: u64, check: &str, a: &[Row], b: &[Row]) -> Option<Divergence> {
    if a.len() != b.len() {
        return diverge(seed, check, format!("lengths {} vs {}", a.len(), b.len()));
    }
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if x.item != y.item {
            return diverge(
                seed,
                check,
                trunc(format!("item {i}: {:?} vs {:?}", x.item, y.item)),
            );
        }
    }
    None
}

/// Provenance questions asked of every run: whole-item trees for sampled
/// output positions plus one root-attribute tree pattern.
struct Questions {
    /// Sampled output row positions.
    samples: Vec<usize>,
    /// Pattern over a sink root attribute, if the sink schema names one.
    pattern: Option<TreePattern>,
}

impl Questions {
    fn new(gen: &Generated, baseline: &CapturedRun) -> Questions {
        let mut rng = StdRng::seed_from_u64(gen.seed ^ 0xb4c7_b4c7_b4c7_b4c7);
        let n = baseline.output.rows.len();
        let mut samples: Vec<usize> = Vec::new();
        for _ in 0..BACKTRACE_SAMPLES.min(n) {
            let i = rng.gen_range(0..n);
            if !samples.contains(&i) {
                samples.push(i);
            }
        }
        let sink = baseline.program.sink() as usize;
        let pattern = baseline.output.op_schemas[sink]
            .fields()
            .and_then(|fields| {
                if fields.is_empty() {
                    None
                } else {
                    let f = &fields[rng.gen_range(0..fields.len())];
                    Some(TreePattern::root().node(PatternNode::attr(&f.name)))
                }
            });
        Questions { samples, pattern }
    }

    /// Answers every question against one captured run: bit-level answers
    /// (for same-id comparisons) plus their canonical forms.
    #[allow(clippy::type_complexity)]
    fn answers(
        &self,
        run: &CapturedRun,
    ) -> Vec<(
        String,
        Vec<pebble_core::SourceProvenance>,
        Vec<(String, usize, String)>,
    )> {
        let mut out = Vec::new();
        for &i in &self.samples {
            let row = &run.output.rows[i];
            let paths = Path::path_set(&row.item);
            let tree = ProvTree::from_paths(paths.iter());
            let bt = Backtrace {
                entries: vec![(row.id, tree)],
            };
            let sources = backtrace(run, bt).expect("backtrace failed on a captured oracle run");
            let canonical = canonical_provenance(&sources);
            out.push((
                format!("whole-item backtrace of output[{i}]"),
                sources,
                canonical,
            ));
        }
        if let Some(pattern) = &self.pattern {
            let bt = pattern.match_rows(&run.output.rows);
            let sources = backtrace(run, bt).expect("backtrace failed on a captured oracle run");
            let canonical = canonical_provenance(&sources);
            out.push(("tree-pattern backtrace".to_string(), sources, canonical));
        }
        out
    }
}

/// The store axis: persists a captured run to segment bytes, cold-opens
/// it as a `ProvStore`, and requires the decoded tables and every
/// store-backed backtrace answer to be byte-identical to the in-memory
/// run — the in-memory path is the referee.
fn store_axis(
    seed: u64,
    check: &str,
    run: &CapturedRun,
    questions: Option<&Questions>,
) -> Option<Divergence> {
    let bytes = pebble_serve::persist(run);
    let store = match pebble_serve::ProvStore::from_bytes(&bytes) {
        Ok(s) => s,
        Err(e) => return diverge(seed, check, format!("cold-open failed: {e}")),
    };
    if store.ops() != run.ops.as_slice() {
        let at = run
            .ops
            .iter()
            .zip(store.ops())
            .position(|(a, b)| a != b)
            .map_or_else(String::new, |i| {
                trunc(format!(": op {i} {:?} vs {:?}", run.ops[i], store.ops()[i]))
            });
        return diverge(
            seed,
            check,
            format!("decoded operator provenance differs{at}"),
        );
    }
    if store.rows() != run.output.rows.as_slice() {
        return diverge(seed, check, "decoded rows differ".to_string());
    }
    if store.op_schemas() != run.output.op_schemas.as_slice() {
        return diverge(seed, check, "decoded schemas differ".to_string());
    }
    let questions = questions?;
    let mut asks: Vec<(String, Backtrace)> = Vec::new();
    for &i in &questions.samples {
        let row = &run.output.rows[i];
        let paths = Path::path_set(&row.item);
        let tree = ProvTree::from_paths(paths.iter());
        asks.push((
            format!("whole-item backtrace of output[{i}]"),
            Backtrace {
                entries: vec![(row.id, tree)],
            },
        ));
    }
    if let Some(pattern) = &questions.pattern {
        asks.push((
            "tree-pattern backtrace".to_string(),
            pattern.match_rows(&run.output.rows),
        ));
    }
    for (name, bt) in asks {
        let mem = backtrace(run, bt.clone()).expect("backtrace failed on a captured oracle run");
        let stored = match store.backtrace(bt) {
            Ok(s) => s,
            Err(e) => return diverge(seed, check, format!("{name}: store backtrace errors ({e})")),
        };
        if mem != stored {
            return diverge(seed, check, trunc(format!("{name}: {mem:?} vs {stored:?}")));
        }
    }
    None
}

/// Runs one generated case through every comparison. `None` means the
/// engine and the reference agree everywhere.
pub fn check(gen: &Generated) -> Option<Divergence> {
    let program: Program = gen.spec.compile();
    let ctx: Context = gen.dataset.context();
    let seed = gen.seed;

    let reference = run_reference(&program, &ctx);
    let fused = run_captured(&program, &ctx, reference_config());
    let (reference, fused) = match (reference, fused) {
        // Both reject the program (the generator sometimes produces
        // pipelines the static layer refuses; both sides must refuse
        // together). Every other engine executor must reject it with the
        // *same* error.
        (Err(_), Err(engine_err)) => return rejection_agreement(seed, &program, &ctx, &engine_err),
        (Err(e), Ok(_)) => {
            return diverge(
                seed,
                "error agreement",
                format!("reference errors ({e}), engine succeeds"),
            )
        }
        (Ok(_), Err(e)) => {
            return diverge(
                seed,
                "error agreement",
                format!("engine errors ({e}), reference succeeds"),
            )
        }
        (Ok(r), Ok(f)) => (r, f),
    };
    let unfused = match run_captured_unfused(&program, &ctx, reference_config()) {
        Ok(u) => u,
        Err(e) => {
            return diverge(
                seed,
                "error agreement",
                format!("unfused engine errors ({e}), fused succeeds"),
            )
        }
    };

    if let Some(d) = compare_captured(seed, "reference vs fused engine (p=1)", &reference, &fused) {
        return Some(d);
    }
    if let Some(d) = compare_captured(seed, "fused vs unfused engine (p=1)", &fused, &unfused) {
        return Some(d);
    }

    // The legacy per-operator spawning executor is the pre-pool referee:
    // the morsel scheduler must reproduce its ids and provenance exactly.
    match run_captured_spawn(&program, &ctx, reference_config()) {
        Ok(spawn) => {
            if let Some(d) =
                compare_captured(seed, "spawn executor vs pool engine (p=1)", &spawn, &fused)
            {
                return Some(d);
            }
        }
        Err(e) => {
            return diverge(
                seed,
                "error agreement",
                format!("spawn executor errors ({e}), pool engine succeeds"),
            )
        }
    }

    // Worker-count invariance, bit-for-bit: re-run the pool scheduler with
    // real worker threads and forced tiny morsels; ids, association tables,
    // and batch orders must not move.
    for workers in ALT_WORKERS {
        let config = reference_config()
            .workers(workers)
            .morsel_rows(ALT_WORKER_MORSEL);
        match run_captured(&program, &ctx, config) {
            Ok(r) => {
                let name = format!("w=1 vs w={workers} (p=1)");
                if let Some(d) = compare_captured(seed, &name, &fused, &r) {
                    return Some(d);
                }
            }
            Err(e) => {
                return diverge(
                    seed,
                    "error agreement",
                    format!("engine at w={workers} errors ({e}), w=1 succeeds"),
                )
            }
        }
    }

    // Columnar/row equivalence, bit-for-bit: the vectorized kernels are
    // specified byte-identical to the row path — same ids, association
    // tables, and batch content — at every worker count (tiny morsels at
    // w>1 exercise the id-range stitcher across many morsels).
    {
        let configs = std::iter::once(reference_config().columnar(true)).chain(
            ALT_WORKERS.iter().map(|&w| {
                reference_config()
                    .columnar(true)
                    .workers(w)
                    .morsel_rows(ALT_WORKER_MORSEL)
            }),
        );
        for config in configs {
            let name = format!("row vs columnar (p=1, w={})", config.workers.max(1));
            match run_captured(&program, &ctx, config) {
                Ok(r) => {
                    if let Some(d) = compare_captured(seed, &name, &fused, &r) {
                        return Some(d);
                    }
                }
                Err(e) => {
                    return diverge(
                        seed,
                        "error agreement",
                        format!("columnar engine errors ({e}), row path succeeds ({name})"),
                    )
                }
            }
        }
    }

    // Out-of-core invariance, bit-for-bit: a one-byte budget routes every
    // operator output, join build side, shuffle, and capture association
    // table through disk; the run must still be indistinguishable from the
    // in-memory capture (rows, ids, association tables), and must report
    // real spill traffic whenever any rows flowed.
    {
        let rows_flowed = fused.output.op_counts.iter().sum::<usize>() > 0;
        let configs = [
            (
                "in-memory vs spilled (p=1, w=1)".to_string(),
                reference_config().mem_budget(SPILL_BUDGET),
            ),
            (
                "in-memory vs spilled (p=1, w=2)".to_string(),
                reference_config()
                    .workers(2)
                    .morsel_rows(ALT_WORKER_MORSEL)
                    .mem_budget(SPILL_BUDGET),
            ),
            (
                "in-memory vs spilled (p=1, columnar)".to_string(),
                reference_config().columnar(true).mem_budget(SPILL_BUDGET),
            ),
        ];
        for (name, config) in configs {
            match run_captured(&program, &ctx, config) {
                Ok(r) => {
                    let spilled = r.output.report.spill.as_ref().map(|s| {
                        s.spills + s.capture_spills > 0 && s.budget_bytes == SPILL_BUDGET as u64
                    });
                    match spilled {
                        Some(true) => {}
                        Some(false) if !rows_flowed => {}
                        Some(false) => {
                            return diverge(
                                seed,
                                &name,
                                "budgeted run reports no spill traffic".to_string(),
                            )
                        }
                        None => {
                            return diverge(
                                seed,
                                &name,
                                "budgeted run reports no spill stats".to_string(),
                            )
                        }
                    }
                    if let Some(d) = compare_captured(seed, &name, &fused, &r) {
                        return Some(d);
                    }
                }
                Err(e) => {
                    return diverge(
                        seed,
                        "error agreement",
                        format!("budgeted engine errors ({e}), in-memory succeeds ({name})"),
                    )
                }
            }
        }
    }

    // Capture transparency: a plain run returns the same rows.
    match run(&program, &ctx, reference_config(), &NoSink) {
        Ok(plain) => {
            if plain.rows != fused.output.rows {
                return diverge(
                    seed,
                    "capture on/off (p=1)",
                    "plain run rows differ from captured run rows".to_string(),
                );
            }
        }
        Err(e) => {
            return diverge(
                seed,
                "capture on/off (p=1)",
                format!("plain run errors ({e}), captured run succeeds"),
            )
        }
    }

    // Partition invariance, modulo identifiers.
    let mut alt_runs: Vec<(usize, CapturedRun)> = Vec::new();
    for parts in ALT_PARTITIONS {
        let config = ExecConfig::with_partitions(parts);
        match run_captured(&program, &ctx, config) {
            Ok(r) => {
                let name = format!("p=1 vs p={parts}");
                if r.output.op_counts != fused.output.op_counts {
                    return diverge(
                        seed,
                        &name,
                        format!(
                            "op_counts {:?} vs {:?}",
                            fused.output.op_counts, r.output.op_counts
                        ),
                    );
                }
                if let Some(d) = compare_items(seed, &name, &fused.output.rows, &r.output.rows) {
                    return Some(d);
                }
                // Within a partition count ids are fixed, so columnar vs
                // row is again a bit-for-bit comparison.
                match run_captured(&program, &ctx, config.columnar(true)) {
                    Ok(c) => {
                        let name = format!("row vs columnar (p={parts})");
                        if let Some(d) = compare_captured(seed, &name, &r, &c) {
                            return Some(d);
                        }
                    }
                    Err(e) => {
                        return diverge(
                            seed,
                            "error agreement",
                            format!("columnar engine at p={parts} errors ({e}), row succeeds"),
                        )
                    }
                }
                alt_runs.push((parts, r));
            }
            Err(e) => {
                return diverge(
                    seed,
                    "error agreement",
                    format!("engine at p={parts} errors ({e}), p=1 succeeds"),
                )
            }
        }
    }

    // Backtracing equivalence.
    let questions = (!fused.output.rows.is_empty()).then(|| Questions::new(gen, &fused));
    if let Some(questions) = &questions {
        let baseline = questions.answers(&fused);
        for (name, other) in [("reference", &reference), ("unfused engine", &unfused)] {
            for (base, got) in baseline.iter().zip(questions.answers(other)) {
                if base.1 != got.1 {
                    return diverge(
                        seed,
                        &format!("{} vs fused engine (p=1)", name),
                        trunc(format!("{}: {:?} vs {:?}", base.0, got.1, base.1)),
                    );
                }
            }
        }
        for (parts, alt) in &alt_runs {
            for (base, got) in baseline.iter().zip(questions.answers(alt)) {
                if base.2 != got.2 {
                    return diverge(
                        seed,
                        &format!("backtrace p=1 vs p={parts}"),
                        trunc(format!("{}: {:?} vs {:?}", base.0, base.2, got.2)),
                    );
                }
            }
        }
    }

    // Store equivalence: round-trip every partition count through the
    // segment format and re-ask the questions from the cold-opened store.
    // (Worker-count and columnar runs are bit-identical to these captures
    // — proven above — so persisting them would persist the same bytes.)
    if let Some(d) = store_axis(seed, "store vs memory (p=1)", &fused, questions.as_ref()) {
        return Some(d);
    }
    for (parts, alt) in &alt_runs {
        let name = format!("store vs memory (p={parts})");
        if let Some(d) = store_axis(seed, &name, alt, questions.as_ref()) {
            return Some(d);
        }
    }

    None
}

/// When the fused engine rejects a program, every other engine executor
/// and configuration must reject it with a `Display`-identical error
/// (static validation runs before any data moves, so the error cannot
/// depend on partitioning or scheduling).
fn rejection_agreement(
    seed: u64,
    program: &Program,
    ctx: &Context,
    fused_err: &EngineError,
) -> Option<Divergence> {
    let expect = fused_err.to_string();
    let mut checks: Vec<(String, Result<CapturedRun, EngineError>)> = vec![
        (
            "unfused engine".into(),
            run_captured_unfused(program, ctx, reference_config()),
        ),
        (
            "spawn executor".into(),
            run_captured_spawn(program, ctx, reference_config()),
        ),
    ];
    for workers in ALT_WORKERS {
        let config = reference_config()
            .workers(workers)
            .morsel_rows(ALT_WORKER_MORSEL);
        checks.push((format!("w={workers}"), run_captured(program, ctx, config)));
    }
    for parts in ALT_PARTITIONS {
        let config = ExecConfig::with_partitions(parts);
        checks.push((format!("p={parts}"), run_captured(program, ctx, config)));
    }
    checks.push((
        "budget=1 (spill)".into(),
        run_captured(program, ctx, reference_config().mem_budget(SPILL_BUDGET)),
    ));
    for (name, outcome) in checks {
        match outcome {
            Ok(_) => {
                return diverge(
                    seed,
                    "rejection agreement",
                    format!("fused engine rejects ({expect}), {name} succeeds"),
                )
            }
            Err(e) => {
                if e.to_string() != expect {
                    return diverge(
                        seed,
                        "rejection agreement",
                        format!("fused engine rejects `{expect}`, {name} rejects `{e}`"),
                    );
                }
            }
        }
    }
    None
}

/// Runs one (typically corrupted, see [`crate::gen::generate_malformed`])
/// case through the engine's executor matrix only — the reference
/// interpreter is skipped because it does not contain UDF panics — and
/// asserts the pool and spawn executors agree on the exact outcome at
/// every configuration: bit-identical captured runs when both succeed,
/// `Display`-identical [`EngineError`]s when both fail.
pub fn check_malformed(gen: &Generated) -> Option<Divergence> {
    let program: Program = gen.spec.compile();
    let ctx: Context = gen.dataset.context();
    let seed = gen.seed;

    let fused = run_captured(&program, &ctx, reference_config());
    let spawn = run_captured_spawn(&program, &ctx, reference_config());
    if let Some(d) = same_outcome(seed, "pool vs spawn (p=1)", &fused, &spawn) {
        return Some(d);
    }
    let unfused = run_captured_unfused(&program, &ctx, reference_config());
    if let Some(d) = same_outcome(seed, "fused vs unfused (p=1)", &fused, &unfused) {
        return Some(d);
    }

    // Capture transparency extends to failures: a plain (no-capture) run
    // fails — or succeeds — exactly like the captured run.
    let plain = run(&program, &ctx, reference_config(), &NoSink);
    match (&plain, &fused) {
        (Ok(p), Ok(f)) => {
            if p.rows != f.output.rows {
                return diverge(
                    seed,
                    "capture on/off (p=1)",
                    "plain run rows differ from captured run rows".to_string(),
                );
            }
        }
        (Err(pe), Err(fe)) => {
            if pe.to_string() != fe.to_string() {
                return diverge(
                    seed,
                    "capture on/off (p=1)",
                    format!("plain run errors `{pe}`, captured run errors `{fe}`"),
                );
            }
        }
        (Ok(_), Err(fe)) => {
            return diverge(
                seed,
                "capture on/off (p=1)",
                format!("plain run succeeds, captured run errors ({fe})"),
            )
        }
        (Err(pe), Ok(_)) => {
            return diverge(
                seed,
                "capture on/off (p=1)",
                format!("plain run errors ({pe}), captured run succeeds"),
            )
        }
    }

    // Worker-count invariance of the whole outcome: the pool at w∈{2,7}
    // with tiny morsels reproduces the w=1 outcome bit-for-bit — first-
    // failure selection is deterministic, not a race.
    for workers in ALT_WORKERS {
        let config = reference_config()
            .workers(workers)
            .morsel_rows(ALT_WORKER_MORSEL);
        let alt = run_captured(&program, &ctx, config);
        if let Some(d) = same_outcome(seed, &format!("w=1 vs w={workers} (p=1)"), &fused, &alt) {
            return Some(d);
        }
    }

    // The columnar kernels agree on the exact outcome too — including
    // which row faults first and with what error (fault checks run before
    // any vectorized work, so failure selection cannot move).
    {
        let col = run_captured(&program, &ctx, reference_config().columnar(true));
        if let Some(d) = same_outcome(seed, "row vs columnar (p=1, w=1)", &fused, &col) {
            return Some(d);
        }
        for workers in ALT_WORKERS {
            let config = reference_config()
                .columnar(true)
                .workers(workers)
                .morsel_rows(ALT_WORKER_MORSEL);
            let alt = run_captured(&program, &ctx, config);
            let name = format!("row vs columnar (p=1, w={workers})");
            if let Some(d) = same_outcome(seed, &name, &fused, &alt) {
                return Some(d);
            }
        }
    }

    // Out-of-core failure agreement: a one-byte budget must not change the
    // outcome — bit-identical capture on success, a `Display`-identical
    // error on failure. Spilled blocks replay the exact morsel layout of
    // the in-memory run, so first-failure selection cannot move.
    {
        let budgeted = run_captured(&program, &ctx, reference_config().mem_budget(SPILL_BUDGET));
        if let Some(d) = same_outcome(seed, "in-memory vs spilled (p=1)", &fused, &budgeted) {
            return Some(d);
        }
        for workers in ALT_WORKERS {
            let config = reference_config()
                .workers(workers)
                .morsel_rows(ALT_WORKER_MORSEL)
                .mem_budget(SPILL_BUDGET);
            let alt = run_captured(&program, &ctx, config);
            let name = format!("in-memory vs spilled (p=1, w={workers})");
            if let Some(d) = same_outcome(seed, &name, &fused, &alt) {
                return Some(d);
            }
        }
    }

    // At other partition counts identifiers (and hence failing-row ids)
    // legitimately move, so the comparison is pool vs spawn *within* each
    // partition count, not across counts.
    for parts in ALT_PARTITIONS {
        let config = ExecConfig::with_partitions(parts);
        let p = run_captured(&program, &ctx, config);
        let s = run_captured_spawn(&program, &ctx, config);
        if let Some(d) = same_outcome(seed, &format!("pool vs spawn (p={parts})"), &p, &s) {
            return Some(d);
        }
        let c = run_captured(&program, &ctx, config.columnar(true));
        if let Some(d) = same_outcome(seed, &format!("row vs columnar (p={parts})"), &p, &c) {
            return Some(d);
        }
        if let Ok(p) = &p {
            if let Some(d) = store_axis(seed, &format!("store vs memory (p={parts})"), p, None) {
                return Some(d);
            }
        }
    }

    // Store equivalence on the (rarer) malformed cases that still succeed:
    // whatever the run captured must survive persist → cold-open intact,
    // with store-backed question answers matching memory.
    if let Ok(fused) = &fused {
        let questions = (!fused.output.rows.is_empty()).then(|| Questions::new(gen, fused));
        let name = "store vs memory (malformed, p=1)";
        if let Some(d) = store_axis(seed, name, fused, questions.as_ref()) {
            return Some(d);
        }
    }
    None
}

/// Result of a fuzzing sweep over a seed range.
#[derive(Debug, Default)]
pub struct FuzzOutcome {
    /// Number of generated cases checked.
    pub checked: u64,
    /// Diverging cases, paired with their divergence.
    pub divergences: Vec<(Generated, Divergence)>,
}

/// Generates and checks `count` cases starting at `start_seed`, collecting
/// at most `stop_after` divergences before giving up early (0 = never stop
/// early).
pub fn fuzz(start_seed: u64, count: u64, stop_after: usize) -> FuzzOutcome {
    let mut outcome = FuzzOutcome::default();
    for seed in start_seed..start_seed.saturating_add(count) {
        let gen = crate::gen::generate(seed);
        outcome.checked += 1;
        if let Some(div) = check(&gen) {
            outcome.divergences.push((gen, div));
            if stop_after > 0 && outcome.divergences.len() >= stop_after {
                break;
            }
        }
    }
    outcome
}

/// The malformed-input sweep: like [`fuzz`], but corrupting each case via
/// [`crate::gen::generate_malformed`] and checking executor agreement on
/// the (usually failing) outcome with [`check_malformed`].
pub fn fuzz_malformed(start_seed: u64, count: u64, stop_after: usize) -> FuzzOutcome {
    let mut outcome = FuzzOutcome::default();
    for seed in start_seed..start_seed.saturating_add(count) {
        let gen = crate::gen::generate_malformed(seed);
        outcome.checked += 1;
        if let Some(div) = check_malformed(&gen) {
            outcome.divergences.push((gen, div));
            if stop_after > 0 && outcome.divergences.len() >= stop_after {
                break;
            }
        }
    }
    outcome
}
