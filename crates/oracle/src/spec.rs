//! Printable pipeline and dataset specifications.
//!
//! The fuzzer does not generate [`Program`]s directly: it generates a
//! [`PipelineSpec`] — a plain-data description restricted to constructs
//! that can be *printed back as Rust source*. That restriction is what
//! makes the failure minimizer's output a ready-to-paste regression test:
//! a minimized `(dataset, pipeline)` pair round-trips through
//! [`PipelineSpec::to_code`] / [`DatasetSpec::to_code`] into a test that
//! rebuilds the exact same program and re-runs the differential check.

use pebble_dataflow::{
    AggFunc, AggSpec, Context, Expr, GroupKey, MapUdf, NamedExpr, Program, ProgramBuilder,
    SelectExpr,
};
use pebble_nested::{json, DataItem, Value};

/// A literal in a generated predicate.
#[derive(Clone, Debug, PartialEq)]
pub enum LitSpec {
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// Double literal.
    Double(f64),
}

impl LitSpec {
    fn expr(&self) -> Expr {
        match self {
            LitSpec::Int(v) => Expr::lit(*v),
            LitSpec::Str(s) => Expr::lit(s.as_str()),
            LitSpec::Bool(b) => Expr::lit(*b),
            LitSpec::Double(d) => Expr::lit(*d),
        }
    }

    fn code(&self) -> String {
        match self {
            LitSpec::Int(v) => format!("LitSpec::Int({v})"),
            LitSpec::Str(s) => format!("LitSpec::Str({s:?}.into())"),
            LitSpec::Bool(b) => format!("LitSpec::Bool({b})"),
            LitSpec::Double(d) => format!("LitSpec::Double({d:?})"),
        }
    }
}

/// Comparison operator of a generated predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CmpKind {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// A generated filter predicate.
#[derive(Clone, Debug, PartialEq)]
pub enum PredSpec {
    /// `path <cmp> literal`.
    Cmp {
        /// Column path.
        path: String,
        /// Comparison.
        cmp: CmpKind,
        /// Right-hand literal.
        lit: LitSpec,
    },
    /// `contains(path, needle)` — substring or collection membership.
    Contains {
        /// Column path.
        path: String,
        /// Needle literal.
        needle: LitSpec,
    },
    /// Negation.
    Not(Box<PredSpec>),
    /// Conjunction.
    And(Box<PredSpec>, Box<PredSpec>),
    /// Disjunction.
    Or(Box<PredSpec>, Box<PredSpec>),
}

impl PredSpec {
    /// Compiles to an engine expression.
    pub fn expr(&self) -> Expr {
        match self {
            PredSpec::Cmp { path, cmp, lit } => {
                let col = Expr::col(path);
                let lit = lit.expr();
                match cmp {
                    CmpKind::Eq => col.eq(lit),
                    CmpKind::Ne => col.ne(lit),
                    CmpKind::Lt => col.lt(lit),
                    CmpKind::Le => col.le(lit),
                    CmpKind::Gt => col.gt(lit),
                    CmpKind::Ge => col.ge(lit),
                }
            }
            PredSpec::Contains { path, needle } => Expr::col(path).contains(needle.expr()),
            PredSpec::Not(p) => p.expr().not(),
            PredSpec::And(a, b) => a.expr().and(b.expr()),
            PredSpec::Or(a, b) => a.expr().or(b.expr()),
        }
    }

    fn code(&self) -> String {
        match self {
            PredSpec::Cmp { path, cmp, lit } => format!(
                "PredSpec::Cmp {{ path: {path:?}.into(), cmp: CmpKind::{cmp:?}, lit: {} }}",
                lit.code()
            ),
            PredSpec::Contains { path, needle } => format!(
                "PredSpec::Contains {{ path: {path:?}.into(), needle: {} }}",
                needle.code()
            ),
            PredSpec::Not(p) => format!("PredSpec::Not(Box::new({}))", p.code()),
            PredSpec::And(a, b) => {
                format!(
                    "PredSpec::And(Box::new({}), Box::new({}))",
                    a.code(),
                    b.code()
                )
            }
            PredSpec::Or(a, b) => {
                format!(
                    "PredSpec::Or(Box::new({}), Box::new({}))",
                    a.code(),
                    b.code()
                )
            }
        }
    }
}

/// One projected column of a generated `select`.
#[derive(Clone, Debug, PartialEq)]
pub enum ColSpec {
    /// `name ← path`.
    Path {
        /// Output attribute name.
        name: String,
        /// Source path.
        path: String,
    },
    /// `name ← ⟨sub_i: path_i⟩` — a one-level struct of paths.
    Struct {
        /// Output attribute name.
        name: String,
        /// Sub-attribute name/path pairs.
        fields: Vec<(String, String)>,
    },
}

impl ColSpec {
    fn named_expr(&self) -> NamedExpr {
        match self {
            ColSpec::Path { name, path } => NamedExpr::aliased(name.clone(), path),
            ColSpec::Struct { name, fields } => NamedExpr::new(
                name.clone(),
                SelectExpr::strct(fields.iter().map(|(n, p)| (n.clone(), SelectExpr::path(p)))),
            ),
        }
    }

    fn code(&self) -> String {
        match self {
            ColSpec::Path { name, path } => {
                format!("ColSpec::Path {{ name: {name:?}.into(), path: {path:?}.into() }}")
            }
            ColSpec::Struct { name, fields } => {
                let fs: Vec<String> = fields
                    .iter()
                    .map(|(n, p)| format!("({n:?}.into(), {p:?}.into())"))
                    .collect();
                format!(
                    "ColSpec::Struct {{ name: {name:?}.into(), fields: vec![{}] }}",
                    fs.join(", ")
                )
            }
        }
    }
}

/// A printable `map` UDF, drawn from a fixed registry of deterministic
/// functions. All of them declare no output schema, exercising the
/// engine's `⊥` (opaque map) provenance path.
#[derive(Clone, Debug, PartialEq)]
pub enum UdfSpec {
    /// Clones the item unchanged.
    Identity,
    /// Adds an integer attribute `attr = value` to every item.
    TagInt {
        /// New attribute name (must be fresh).
        attr: String,
        /// Attribute value.
        value: i64,
    },
    /// Panics on every item — a worst-case misbehaving UDF. Used by the
    /// malformed-input axis: both executors must contain the panic and
    /// report the same row-level error.
    PanicAlways {
        /// Panic message.
        message: String,
    },
    /// Panics when the serialized item contains `needle`, otherwise
    /// behaves as the identity — a UDF that fails on *some* rows, so the
    /// executors' first-failure selection is exercised.
    PanicOnNeedle {
        /// Substring that triggers the panic.
        needle: String,
    },
}

impl UdfSpec {
    /// Compiles to an engine UDF.
    pub fn udf(&self) -> MapUdf {
        match self {
            UdfSpec::Identity => MapUdf {
                name: "identity".into(),
                f: std::sync::Arc::new(Clone::clone),
                output_schema: None,
            },
            UdfSpec::TagInt { attr, value } => {
                let attr = attr.clone();
                let value = *value;
                MapUdf {
                    name: format!("tag_{attr}"),
                    f: std::sync::Arc::new(move |d: &DataItem| {
                        let mut d = d.clone();
                        d.push(attr.as_str(), Value::Int(value));
                        d
                    }),
                    output_schema: None,
                }
            }
            UdfSpec::PanicAlways { message } => {
                let message = message.clone();
                MapUdf {
                    name: "panic_always".into(),
                    f: std::sync::Arc::new(move |_d: &DataItem| panic!("{message}")),
                    output_schema: None,
                }
            }
            UdfSpec::PanicOnNeedle { needle } => {
                let needle = needle.clone();
                MapUdf {
                    name: "panic_on_needle".into(),
                    f: std::sync::Arc::new(move |d: &DataItem| {
                        if json::item_to_string(d).contains(needle.as_str()) {
                            panic!("refusing item containing `{needle}`");
                        }
                        d.clone()
                    }),
                    output_schema: None,
                }
            }
        }
    }

    fn code(&self) -> String {
        match self {
            UdfSpec::Identity => "UdfSpec::Identity".into(),
            UdfSpec::TagInt { attr, value } => {
                format!("UdfSpec::TagInt {{ attr: {attr:?}.into(), value: {value} }}")
            }
            UdfSpec::PanicAlways { message } => {
                format!("UdfSpec::PanicAlways {{ message: {message:?}.into() }}")
            }
            UdfSpec::PanicOnNeedle { needle } => {
                format!("UdfSpec::PanicOnNeedle {{ needle: {needle:?}.into() }}")
            }
        }
    }
}

/// Aggregate function mirror with a stable printed form.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AggKind {
    Count,
    Sum,
    Min,
    Max,
    Avg,
    CollectList,
    CollectSet,
}

impl AggKind {
    fn func(self) -> AggFunc {
        match self {
            AggKind::Count => AggFunc::Count,
            AggKind::Sum => AggFunc::Sum,
            AggKind::Min => AggFunc::Min,
            AggKind::Max => AggFunc::Max,
            AggKind::Avg => AggFunc::Avg,
            AggKind::CollectList => AggFunc::CollectList,
            AggKind::CollectSet => AggFunc::CollectSet,
        }
    }
}

/// One operator of a generated pipeline. Operator ids are vector indexes:
/// the spec lists operators in topological order and input references
/// point at earlier entries; the last entry is the sink.
#[derive(Clone, Debug, PartialEq)]
pub enum OpSpec {
    /// Read a registered source.
    Read {
        /// Source dataset name.
        source: String,
    },
    /// Filter by a predicate.
    Filter {
        /// Input operator index.
        input: usize,
        /// The predicate.
        pred: PredSpec,
    },
    /// Project columns.
    Select {
        /// Input operator index.
        input: usize,
        /// Projected columns.
        cols: Vec<ColSpec>,
    },
    /// Apply a registry UDF.
    Map {
        /// Input operator index.
        input: usize,
        /// The UDF.
        udf: UdfSpec,
    },
    /// Explode a collection column.
    Flatten {
        /// Input operator index.
        input: usize,
        /// Collection path.
        col: String,
        /// Name of the new element attribute.
        new_attr: String,
    },
    /// Equi-join two inputs.
    Join {
        /// Left input operator index.
        left: usize,
        /// Right input operator index.
        right: usize,
        /// Key path pairs (left, right).
        keys: Vec<(String, String)>,
    },
    /// Concatenate two inputs.
    Union {
        /// Left input operator index.
        left: usize,
        /// Right input operator index.
        right: usize,
    },
    /// Group and aggregate.
    GroupAgg {
        /// Input operator index.
        input: usize,
        /// Key `(output name, path)` pairs.
        keys: Vec<(String, String)>,
        /// Aggregates `(function, input path — empty for whole items,
        /// output name)`.
        aggs: Vec<(AggKind, String, String)>,
    },
}

impl OpSpec {
    /// Indexes of this operator's inputs.
    pub fn inputs(&self) -> Vec<usize> {
        match self {
            OpSpec::Read { .. } => vec![],
            OpSpec::Filter { input, .. }
            | OpSpec::Select { input, .. }
            | OpSpec::Map { input, .. }
            | OpSpec::Flatten { input, .. }
            | OpSpec::GroupAgg { input, .. } => vec![*input],
            OpSpec::Join { left, right, .. } | OpSpec::Union { left, right } => {
                vec![*left, *right]
            }
        }
    }

    /// Rewrites input references through `f`.
    pub fn map_inputs(&mut self, f: impl Fn(usize) -> usize) {
        match self {
            OpSpec::Read { .. } => {}
            OpSpec::Filter { input, .. }
            | OpSpec::Select { input, .. }
            | OpSpec::Map { input, .. }
            | OpSpec::Flatten { input, .. }
            | OpSpec::GroupAgg { input, .. } => *input = f(*input),
            OpSpec::Join { left, right, .. } | OpSpec::Union { left, right } => {
                *left = f(*left);
                *right = f(*right);
            }
        }
    }

    fn code(&self) -> String {
        match self {
            OpSpec::Read { source } => format!("OpSpec::Read {{ source: {source:?}.into() }}"),
            OpSpec::Filter { input, pred } => {
                format!("OpSpec::Filter {{ input: {input}, pred: {} }}", pred.code())
            }
            OpSpec::Select { input, cols } => {
                let cs: Vec<String> = cols.iter().map(ColSpec::code).collect();
                format!(
                    "OpSpec::Select {{ input: {input}, cols: vec![{}] }}",
                    cs.join(", ")
                )
            }
            OpSpec::Map { input, udf } => {
                format!("OpSpec::Map {{ input: {input}, udf: {} }}", udf.code())
            }
            OpSpec::Flatten {
                input,
                col,
                new_attr,
            } => format!(
                "OpSpec::Flatten {{ input: {input}, col: {col:?}.into(), new_attr: {new_attr:?}.into() }}"
            ),
            OpSpec::Join { left, right, keys } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|(l, r)| format!("({l:?}.into(), {r:?}.into())"))
                    .collect();
                format!(
                    "OpSpec::Join {{ left: {left}, right: {right}, keys: vec![{}] }}",
                    ks.join(", ")
                )
            }
            OpSpec::Union { left, right } => {
                format!("OpSpec::Union {{ left: {left}, right: {right} }}")
            }
            OpSpec::GroupAgg { input, keys, aggs } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|(n, p)| format!("({n:?}.into(), {p:?}.into())"))
                    .collect();
                let ags: Vec<String> = aggs
                    .iter()
                    .map(|(f, p, o)| format!("(AggKind::{f:?}, {p:?}.into(), {o:?}.into())"))
                    .collect();
                format!(
                    "OpSpec::GroupAgg {{ input: {input}, keys: vec![{}], aggs: vec![{}] }}",
                    ks.join(", "),
                    ags.join(", ")
                )
            }
        }
    }
}

/// A generated pipeline: operators in topological order, last is the sink.
#[derive(Clone, Debug, PartialEq)]
pub struct PipelineSpec {
    /// The operators.
    pub ops: Vec<OpSpec>,
}

impl PipelineSpec {
    /// Compiles the spec to an executable program. Spec indexes map 1:1 to
    /// engine operator ids.
    pub fn compile(&self) -> Program {
        let mut b = ProgramBuilder::new();
        let mut ids = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            let id = match op {
                OpSpec::Read { source } => b.read(source.clone()),
                OpSpec::Filter { input, pred } => b.filter(ids[*input], pred.expr()),
                OpSpec::Select { input, cols } => {
                    b.select(ids[*input], cols.iter().map(ColSpec::named_expr).collect())
                }
                OpSpec::Map { input, udf } => b.map(ids[*input], udf.udf()),
                OpSpec::Flatten {
                    input,
                    col,
                    new_attr,
                } => b.flatten(ids[*input], col, new_attr.clone()),
                OpSpec::Join { left, right, keys } => b.join(
                    ids[*left],
                    ids[*right],
                    keys.iter()
                        .map(|(l, r)| {
                            (pebble_nested::Path::parse(l), pebble_nested::Path::parse(r))
                        })
                        .collect(),
                ),
                OpSpec::Union { left, right } => b.union(ids[*left], ids[*right]),
                OpSpec::GroupAgg { input, keys, aggs } => b.group_aggregate(
                    ids[*input],
                    keys.iter()
                        .map(|(n, p)| GroupKey::aliased(n.clone(), p))
                        .collect(),
                    aggs.iter()
                        .map(|(f, p, o)| AggSpec::new(f.func(), p, o.clone()))
                        .collect(),
                ),
            };
            ids.push(id);
        }
        b.build(*ids.last().expect("pipeline has operators"))
    }

    /// Prints the spec back as a Rust `PipelineSpec { .. }` literal.
    pub fn to_code(&self) -> String {
        let ops: Vec<String> = self
            .ops
            .iter()
            .map(|o| format!("        {},", o.code()))
            .collect();
        format!(
            "PipelineSpec {{\n    ops: vec![\n{}\n    ],\n}}",
            ops.join("\n")
        )
    }

    /// One-line human-readable shape, e.g. `read>filter>flatten>aggregation`.
    pub fn describe(&self) -> String {
        let names: Vec<&str> = self
            .ops
            .iter()
            .map(|o| match o {
                OpSpec::Read { .. } => "read",
                OpSpec::Filter { .. } => "filter",
                OpSpec::Select { .. } => "select",
                OpSpec::Map { .. } => "map",
                OpSpec::Flatten { .. } => "flatten",
                OpSpec::Join { .. } => "join",
                OpSpec::Union { .. } => "union",
                OpSpec::GroupAgg { .. } => "aggregation",
            })
            .collect();
        names.join(">")
    }
}

/// The concrete dataset a generated pipeline runs against, as explicit
/// items so the minimizer can drop individual rows.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetSpec {
    /// `(source name, items)` pairs.
    pub sources: Vec<(String, Vec<DataItem>)>,
}

impl DatasetSpec {
    /// Rebuilds a dataset from `(source name, NDJSON)` pairs — the form
    /// emitted into regression tests.
    pub fn from_ndjson(sources: &[(&str, &str)]) -> Self {
        DatasetSpec {
            sources: sources
                .iter()
                .map(|(name, nd)| {
                    let items = json::parse_lines(nd).expect("regression NDJSON parses");
                    (name.to_string(), items)
                })
                .collect(),
        }
    }

    /// Registers every source in a fresh engine context (schemas inferred
    /// from the items, exactly as production ingest does).
    pub fn context(&self) -> Context {
        let mut ctx = Context::new();
        for (name, items) in &self.sources {
            ctx.register(name.clone(), items.clone());
        }
        ctx
    }

    /// Prints the dataset back as a `DatasetSpec::from_ndjson(..)` call.
    pub fn to_code(&self) -> String {
        let srcs: Vec<String> = self
            .sources
            .iter()
            .map(|(name, items)| {
                let nd: Vec<String> = items.iter().map(json::item_to_string).collect();
                format!("    ({name:?}, {:?}),", nd.join("\n"))
            })
            .collect();
        format!("DatasetSpec::from_ndjson(&[\n{}\n])", srcs.join("\n"))
    }

    /// Total number of rows across all sources.
    pub fn rows(&self) -> usize {
        self.sources.iter().map(|(_, items)| items.len()).sum()
    }
}
