//! Greedy failure minimizer.
//!
//! Given a diverging `(pipeline, dataset, seed)` triple, [`minimize`]
//! shrinks it while [`check`](crate::check) keeps reporting *some*
//! divergence (classic delta-debugging acceptance — the divergence may
//! shift as the case shrinks, any repro is a good repro):
//!
//! 1. **operator removal** — drop one non-`read` operator at a time,
//!    rewiring its consumers to its first input, then pruning operators no
//!    longer reachable from the sink and sources no longer read;
//! 2. **row removal** — per source, drop chunks of rows with halving chunk
//!    sizes down to single rows.
//!
//! The loop runs to a fixpoint, so the result is 1-minimal: removing any
//! single operator or row makes the divergence disappear.
//! [`regression_code`] then renders the shrunk case as a ready-to-paste
//! `#[test]` for `crates/oracle/tests/regressions.rs`.

use crate::diff::check;
use crate::gen::Generated;
use crate::spec::{OpSpec, PipelineSpec};

/// Shrinks a diverging case to a 1-minimal repro. Returns the input
/// unchanged if it does not diverge.
pub fn minimize(gen: &Generated) -> Generated {
    minimize_with(gen, |g| check(g).is_some())
}

/// [`minimize`] generalized over the failure predicate: shrinks `gen`
/// while `failing` keeps returning `true`. The differential oracle passes
/// `check(..).is_some()`; tests pass synthetic predicates to verify the
/// shrinking itself.
pub fn minimize_with(gen: &Generated, failing: impl Fn(&Generated) -> bool) -> Generated {
    if !failing(gen) {
        return gen.clone();
    }
    let mut best = gen.clone();
    loop {
        let mut progress = false;
        while shrink_ops_once(&mut best, &failing) {
            progress = true;
        }
        while shrink_rows_once(&mut best, &failing) {
            progress = true;
        }
        if !progress {
            return best;
        }
    }
}

/// Tries every single-operator removal; commits the first one that still
/// diverges.
fn shrink_ops_once(best: &mut Generated, failing: &impl Fn(&Generated) -> bool) -> bool {
    for idx in (0..best.spec.ops.len()).rev() {
        let Some(candidate) = remove_op(best, idx) else {
            continue;
        };
        if failing(&candidate) {
            *best = candidate;
            return true;
        }
    }
    false
}

/// Builds the candidate with operator `idx` removed, or `None` when the
/// removal cannot produce a valid pipeline (removing a `read`, or emptying
/// the pipeline).
fn remove_op(gen: &Generated, idx: usize) -> Option<Generated> {
    let ops = &gen.spec.ops;
    if ops.len() <= 1 || matches!(ops[idx], OpSpec::Read { .. }) {
        return None;
    }
    let replacement = ops[idx].inputs()[0];
    let mut next: Vec<OpSpec> = Vec::with_capacity(ops.len() - 1);
    for (i, op) in ops.iter().enumerate() {
        if i == idx {
            continue;
        }
        let mut op = op.clone();
        op.map_inputs(|r| {
            let r = if r == idx { replacement } else { r };
            if r > idx {
                r - 1
            } else {
                r
            }
        });
        next.push(op);
    }
    let mut candidate = Generated {
        seed: gen.seed,
        dataset: gen.dataset.clone(),
        spec: PipelineSpec { ops: next },
    };
    prune(&mut candidate);
    Some(candidate)
}

/// Drops operators unreachable from the sink (the last operator) and
/// sources no longer read by any operator.
fn prune(gen: &mut Generated) {
    let ops = &gen.spec.ops;
    let mut live = vec![false; ops.len()];
    let mut stack = vec![ops.len() - 1];
    while let Some(i) = stack.pop() {
        if std::mem::replace(&mut live[i], true) {
            continue;
        }
        stack.extend(ops[i].inputs());
    }
    let remap: Vec<usize> = live
        .iter()
        .scan(0usize, |n, &l| {
            let v = *n;
            if l {
                *n += 1;
            }
            Some(v)
        })
        .collect();
    gen.spec.ops = gen
        .spec
        .ops
        .iter()
        .enumerate()
        .filter(|(i, _)| live[*i])
        .map(|(_, op)| {
            let mut op = op.clone();
            op.map_inputs(|r| remap[r]);
            op
        })
        .collect();
    let read: Vec<String> = gen
        .spec
        .ops
        .iter()
        .filter_map(|op| match op {
            OpSpec::Read { source } => Some(source.clone()),
            _ => None,
        })
        .collect();
    gen.dataset
        .sources
        .retain(|(name, _)| read.iter().any(|r| r == name));
}

/// One pass of greedy row dropping: per source, chunk sizes halving from
/// half the source down to 1; commits the first chunk whose removal still
/// diverges.
fn shrink_rows_once(best: &mut Generated, failing: &impl Fn(&Generated) -> bool) -> bool {
    for src in 0..best.dataset.sources.len() {
        let n = best.dataset.sources[src].1.len();
        let mut chunk = (n / 2).max(1);
        loop {
            let mut start = 0;
            while start < best.dataset.sources[src].1.len() {
                let len = chunk.min(best.dataset.sources[src].1.len() - start);
                if len == 0 {
                    break;
                }
                let mut candidate = best.clone();
                candidate.dataset.sources[src].1.drain(start..start + len);
                if failing(&candidate) {
                    *best = candidate;
                    return true;
                }
                start += len;
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
    }
    false
}

/// Renders a minimized case as a ready-to-paste regression test for
/// `crates/oracle/tests/regressions.rs`.
pub fn regression_code(gen: &Generated) -> String {
    let shape = gen.spec.describe();
    let rows = gen.dataset.rows();
    format!(
        r#"/// Minimized differential repro: seed {seed}, shape `{shape}`, {rows} input rows.
#[test]
fn oracle_seed_{seed}() {{
    let dataset = {dataset};
    let spec = {spec};
    let gen = Generated {{ seed: {seed}, dataset, spec }};
    assert_eq!(check(&gen), None);
}}
"#,
        seed = gen.seed,
        dataset = indent(&gen.dataset.to_code(), 4),
        spec = indent(&gen.spec.to_code(), 4),
    )
}

/// Indents every line after the first by `by` spaces, so multi-line
/// literals nest inside the emitted test body.
fn indent(code: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    code.replace('\n', &format!("\n{pad}"))
}
