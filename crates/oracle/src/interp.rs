//! The Tab. 5 reference interpreter.
//!
//! A deliberately naive, single-threaded executable spec of every operator
//! and its provenance-capture rule: each operator is a plain loop that
//! clones what it needs, materializes its whole output, and appends its
//! identifier associations (Tab. 6) to a growing table. No fusion, no
//! shared values, no hashing shortcuts — where the optimized engine hash
//! joins, the reference nested-loop joins; where the engine hash-groups,
//! the reference scans the group list.
//!
//! ### Identifier convention
//!
//! Item identifiers are an engine artifact (`op << 48 | partition << 32 |
//! seq`), not part of Tab. 5. The reference reproduces the identifiers the
//! engine assigns when run with `partitions: 1`, which requires modelling
//! the engine's *partition structure* (not its parallelism): `read`
//! produces one partition, per-row operators and `flatten` preserve their
//! input's partition structure, `join` probes per left partition, `union`
//! concatenates the two sides' partition lists (so its right side starts at
//! partition index `left.len()`), and grouping re-chunks into one
//! partition. The differential runner compares the reference against the
//! engine at `partitions: 1` bit-for-bit, and against other partition
//! counts modulo identifiers.

use pebble_core::{CapturedRun, InputProv, OperatorProvenance, ProvAssoc};
use pebble_dataflow::{
    op::merge_item_schemas, AggFunc, AggSpec, Context, EngineError, ExecConfig, GroupKey, ItemId,
    NamedExpr, OpId, OpKind, Program, Result, Row, RunOutput, RunReport,
};
use pebble_nested::{DataItem, DataType, Path, Step, Value};

/// Reference rows, grouped by the partition structure described in the
/// module docs.
type Parts = Vec<Vec<Row>>;

fn make_id(op: OpId, partition: usize, seq: u32) -> ItemId {
    ((op as u64) << 48) | ((partition as u64) << 32) | seq as u64
}

/// The configuration the reference models; exposed so callers compare the
/// engine against the reference at the same partition count. Workers are
/// pinned to 1 so the reference comparison itself is scheduler-free; the
/// differential runner separately re-runs the engine at higher worker
/// counts and checks those against this baseline.
pub fn reference_config() -> ExecConfig {
    ExecConfig::with_partitions(1).workers(1)
}

/// Executes `program` on the reference interpreter with provenance
/// capture, producing the same [`CapturedRun`] the engine's captured run
/// produces at `partitions: 1`.
pub fn run_reference(program: &Program, ctx: &Context) -> Result<CapturedRun> {
    let op_schemas = program.infer_schemas(&ctx.source_schemas())?;
    let ops = program.operators();
    let mut outputs: Vec<Parts> = Vec::with_capacity(ops.len());
    let mut op_counts: Vec<usize> = Vec::with_capacity(ops.len());
    let mut prov: Vec<OperatorProvenance> = Vec::with_capacity(ops.len());

    for op in ops {
        let (parts, assoc) = match &op.kind {
            OpKind::Read { source } => {
                let items = ctx
                    .source(source)
                    .ok_or_else(|| EngineError::UnknownSource(source.clone()))?;
                ref_read(op.id, items)
            }
            OpKind::Filter { predicate } => {
                let input = &outputs[op.inputs[0] as usize];
                ref_filter(op.id, input, predicate)
            }
            OpKind::Select { exprs } => {
                let input = &outputs[op.inputs[0] as usize];
                ref_select(op.id, input, exprs)
            }
            OpKind::Map { udf } => {
                let input = &outputs[op.inputs[0] as usize];
                ref_map(op.id, input, udf)
            }
            OpKind::Flatten { col, new_attr } => {
                let input = &outputs[op.inputs[0] as usize];
                ref_flatten(op.id, input, col, new_attr)
            }
            OpKind::Join { keys } => {
                let left = &outputs[op.inputs[0] as usize];
                let right = &outputs[op.inputs[1] as usize];
                ref_join(op.id, left, right, keys)
            }
            OpKind::Union => {
                let left = &outputs[op.inputs[0] as usize];
                let right = &outputs[op.inputs[1] as usize];
                ref_union(op.id, left, right)
            }
            OpKind::GroupAggregate { keys, aggs } => {
                let input = &outputs[op.inputs[0] as usize];
                ref_group_aggregate(op.id, input, keys, aggs)
            }
        };
        op_counts.push(parts.iter().map(Vec::len).sum());
        let input_schemas: Vec<&DataType> =
            op.inputs.iter().map(|&i| &op_schemas[i as usize]).collect();
        let (inputs, manipulated) = reference_static_prov(&op.kind, &op.inputs, &input_schemas);
        prov.push(OperatorProvenance {
            oid: op.id,
            op_type: op.kind.type_name().to_string(),
            inputs,
            manipulated,
            assoc,
        });
        outputs.push(parts);
    }

    let rows: Vec<Row> = std::mem::take(&mut outputs[program.sink() as usize])
        .into_iter()
        .flatten()
        .collect();
    Ok(CapturedRun {
        program: program.clone(),
        output: RunOutput {
            rows,
            op_schemas,
            op_counts,
            // The reference is a spec, not an instrumented engine: its
            // report carries only the executor tag.
            report: RunReport {
                executor: "reference".to_string(),
                ..RunReport::default()
            },
        },
        ops: prov,
    })
}

fn ref_read(op: OpId, items: &[DataItem]) -> (Parts, ProvAssoc) {
    let mut rows = Vec::with_capacity(items.len());
    let mut ids = Vec::with_capacity(items.len());
    for (seq, item) in items.iter().enumerate() {
        let id = make_id(op, 0, seq as u32);
        ids.push(id);
        rows.push(Row {
            id,
            item: item.clone(),
        });
    }
    (vec![rows], ProvAssoc::Read(ids))
}

/// Shared per-partition walk for the three per-row operators: `body`
/// returns the output item for a row, or `None` to drop it.
fn ref_per_row(
    op: OpId,
    input: &Parts,
    body: impl Fn(&DataItem) -> Option<DataItem>,
) -> (Parts, ProvAssoc) {
    let mut parts = Vec::with_capacity(input.len());
    let mut assoc = Vec::new();
    for (pidx, partition) in input.iter().enumerate() {
        let mut seq = 0u32;
        let mut out = Vec::new();
        for row in partition {
            if let Some(item) = body(&row.item) {
                let id = make_id(op, pidx, seq);
                seq += 1;
                assoc.push((row.id, id));
                out.push(Row { id, item });
            }
        }
        parts.push(out);
    }
    (parts, ProvAssoc::Unary(assoc))
}

fn ref_filter(op: OpId, input: &Parts, predicate: &pebble_dataflow::Expr) -> (Parts, ProvAssoc) {
    ref_per_row(op, input, |item| {
        predicate.eval_bool(item).then(|| item.clone())
    })
}

fn ref_select(op: OpId, input: &Parts, exprs: &[NamedExpr]) -> (Parts, ProvAssoc) {
    ref_per_row(op, input, |item| {
        let mut next = DataItem::new();
        for ne in exprs {
            next.push(ne.name.as_str(), ne.expr.eval(item));
        }
        Some(next)
    })
}

fn ref_map(op: OpId, input: &Parts, udf: &pebble_dataflow::MapUdf) -> (Parts, ProvAssoc) {
    ref_per_row(op, input, |item| Some((udf.f)(item)))
}

fn ref_flatten(op: OpId, input: &Parts, col: &Path, new_attr: &str) -> (Parts, ProvAssoc) {
    let mut parts = Vec::with_capacity(input.len());
    let mut assoc = Vec::new();
    for (pidx, partition) in input.iter().enumerate() {
        let mut seq = 0u32;
        let mut out = Vec::new();
        for row in partition {
            // Missing or non-collection values produce no output rows
            // (Tab. 5 flatten iterates the collection's elements).
            let elements = match col.eval(&row.item) {
                Some(Value::Bag(vs)) | Some(Value::Set(vs)) => vs,
                _ => continue,
            };
            for (pos0, element) in elements.iter().enumerate() {
                let mut item = row.item.clone();
                item.push(new_attr, element.clone());
                let id = make_id(op, pidx, seq);
                seq += 1;
                // Tab. 6: ⟨id^i, pos, id^o⟩ with 1-based positions.
                assoc.push((row.id, pos0 as u32 + 1, id));
                out.push(Row { id, item });
            }
        }
        parts.push(out);
    }
    (parts, ProvAssoc::Flatten(assoc))
}

/// Evaluates a join key; any null or missing component makes the whole key
/// undefined, and undefined keys never join.
fn ref_join_key(item: &DataItem, paths: &[Path]) -> Option<Vec<Value>> {
    paths
        .iter()
        .map(|p| match p.eval(item) {
            Some(v) if !v.is_null() => Some(v.clone()),
            _ => None,
        })
        .collect()
}

fn ref_join(op: OpId, left: &Parts, right: &Parts, keys: &[(Path, Path)]) -> (Parts, ProvAssoc) {
    let left_paths: Vec<Path> = keys.iter().map(|(l, _)| l.clone()).collect();
    let right_paths: Vec<Path> = keys.iter().map(|(_, r)| r.clone()).collect();
    let right_rows: Vec<&Row> = right.iter().flatten().collect();
    let mut parts = Vec::with_capacity(left.len());
    let mut assoc = Vec::new();
    for (pidx, partition) in left.iter().enumerate() {
        let mut seq = 0u32;
        let mut out = Vec::new();
        for lrow in partition {
            let Some(lkey) = ref_join_key(&lrow.item, &left_paths) else {
                continue;
            };
            // Naive nested loop: scan the entire right input per left row.
            for rrow in &right_rows {
                let Some(rkey) = ref_join_key(&rrow.item, &right_paths) else {
                    continue;
                };
                if lkey != rkey {
                    continue;
                }
                let item = lrow.item.merged(&rrow.item);
                let id = make_id(op, pidx, seq);
                seq += 1;
                assoc.push((Some(lrow.id), Some(rrow.id), id));
                out.push(Row { id, item });
            }
        }
        parts.push(out);
    }
    (parts, ProvAssoc::Binary(assoc))
}

fn ref_union(op: OpId, left: &Parts, right: &Parts) -> (Parts, ProvAssoc) {
    let mut parts = Vec::with_capacity(left.len() + right.len());
    let mut assoc = Vec::new();
    for (side, input) in [left, right].into_iter().enumerate() {
        let offset = if side == 0 { 0 } else { left.len() };
        for (pidx, partition) in input.iter().enumerate() {
            let mut out = Vec::with_capacity(partition.len());
            for (seq, row) in partition.iter().enumerate() {
                let id = make_id(op, offset + pidx, seq as u32);
                if side == 0 {
                    assoc.push((Some(row.id), None, id));
                } else {
                    assoc.push((None, Some(row.id), id));
                }
                out.push(Row {
                    id,
                    item: row.item.clone(),
                });
            }
            parts.push(out);
        }
    }
    (parts, ProvAssoc::Binary(assoc))
}

fn ref_key(item: &DataItem, keys: &[GroupKey]) -> Vec<Value> {
    keys.iter()
        .map(|k| k.path.eval(item).cloned().unwrap_or(Value::Null))
        .collect()
}

fn ref_group_aggregate(
    op: OpId,
    input: &Parts,
    keys: &[GroupKey],
    aggs: &[AggSpec],
) -> (Parts, ProvAssoc) {
    // Naive grouping: scan the group list per row (no hash map). Groups
    // form in first-seen order over the global row order, which is also
    // the order identifiers are assigned in; the *output* is then sorted
    // by key — the engine's canonical order.
    let mut grouped: Vec<(Vec<Value>, Vec<&Row>)> = Vec::new();
    for row in input.iter().flatten() {
        let key = ref_key(&row.item, keys);
        match grouped.iter_mut().find(|(k, _)| *k == key) {
            Some((_, members)) => members.push(row),
            None => grouped.push((key, vec![row])),
        }
    }
    let mut assoc = Vec::with_capacity(grouped.len());
    let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(grouped.len());
    for (seq, (key, members)) in grouped.into_iter().enumerate() {
        let mut item = DataItem::new();
        for (k, kv) in keys.iter().zip(&key) {
            item.push(k.name.as_str(), kv.clone());
        }
        for agg in aggs {
            item.push(agg.output.as_str(), ref_agg(agg, &members));
        }
        let id = make_id(op, 0, seq as u32);
        // Tab. 6: ⟨ids^i, id^o⟩ with member ids in nesting order.
        assoc.push((members.iter().map(|r| r.id).collect(), id));
        keyed.push((key, Row { id, item }));
    }
    keyed.sort_by(|a, b| a.0.cmp(&b.0));
    let rows: Vec<Row> = keyed.into_iter().map(|(_, r)| r).collect();
    (vec![rows], ProvAssoc::Agg(assoc))
}

/// Evaluates one aggregate over a group, straight from the operator
/// definitions: nulls are skipped (except by `collect_list`, which keeps
/// them so nested positions stay aligned with the member id list, and by
/// `count(*)`), sums stay integral only when every input is an integer,
/// and an empty-path input nests whole items.
fn ref_agg(agg: &AggSpec, members: &[&Row]) -> Value {
    if agg.input.is_empty() {
        return match agg.func {
            AggFunc::Count => Value::Int(members.len() as i64),
            AggFunc::CollectList => Value::Bag(
                members
                    .iter()
                    .map(|r| Value::Item(r.item.clone()))
                    .collect(),
            ),
            AggFunc::CollectSet => {
                Value::set_from(members.iter().map(|r| Value::Item(r.item.clone())))
            }
            // Scalar aggregates over the whole item degenerate to nulls.
            _ => Value::Null,
        };
    }
    let all: Vec<Value> = members
        .iter()
        .map(|r| agg.input.eval(&r.item).cloned().unwrap_or(Value::Null))
        .collect();
    let present: Vec<&Value> = all.iter().filter(|v| !v.is_null()).collect();
    match agg.func {
        AggFunc::Count => Value::Int(present.len() as i64),
        AggFunc::Sum => {
            if present.is_empty() {
                Value::Null
            } else if present.iter().all(|v| matches!(v, Value::Int(_))) {
                Value::Int(present.iter().filter_map(|v| v.as_int()).sum())
            } else {
                Value::Double(present.iter().filter_map(|v| v.as_double()).sum())
            }
        }
        AggFunc::Avg => {
            let vs: Vec<f64> = present.iter().filter_map(|v| v.as_double()).collect();
            if vs.is_empty() {
                Value::Null
            } else {
                Value::Double(vs.iter().sum::<f64>() / vs.len() as f64)
            }
        }
        AggFunc::Min => present.iter().min().map_or(Value::Null, |v| (*v).clone()),
        AggFunc::Max => present.iter().max().map_or(Value::Null, |v| (*v).clone()),
        AggFunc::CollectList => Value::Bag(all),
        AggFunc::CollectSet => Value::set_from(present.into_iter().cloned()),
    }
}

/// Derives the schema-level access sets `A` and manipulation mapping `M`
/// of Def. 5.1, written independently from `pebble-core`'s derivation so
/// the differential runner cross-checks both.
fn reference_static_prov(
    kind: &OpKind,
    preds: &[OpId],
    input_schemas: &[&DataType],
) -> (Vec<InputProv>, Option<Vec<(Path, Path)>>) {
    let input = |idx: usize, accessed: Option<Vec<Path>>| InputProv {
        pred: preds.get(idx).copied(),
        accessed,
    };
    let dedup_schema_level = |paths: Vec<Path>| {
        let mut out: Vec<Path> = Vec::new();
        for p in paths {
            let p = p.to_schema_level();
            if !out.contains(&p) {
                out.push(p);
            }
        }
        out
    };
    match kind {
        OpKind::Read { .. } => (Vec::new(), Some(Vec::new())),
        OpKind::Filter { predicate } => (
            vec![input(
                0,
                Some(dedup_schema_level(predicate.accessed_paths())),
            )],
            Some(Vec::new()),
        ),
        OpKind::Select { exprs } => {
            let mut accessed = Vec::new();
            let mut manipulated = Vec::new();
            for ne in exprs {
                for p in dedup_schema_level(ne.expr.accessed()) {
                    if !accessed.contains(&p) {
                        accessed.push(p);
                    }
                }
                for (src, dst) in ne.expr.manipulated(&Path::attr(&ne.name)) {
                    manipulated.push((src.to_schema_level(), dst));
                }
            }
            (vec![input(0, Some(accessed))], Some(manipulated))
        }
        OpKind::Map { .. } => (vec![input(0, None)], None),
        OpKind::Join { keys } => {
            let left = dedup_schema_level(keys.iter().map(|(l, _)| l.clone()).collect());
            let right = dedup_schema_level(keys.iter().map(|(_, r)| r.clone()).collect());
            let mut manipulated = Vec::new();
            if let Some(fields) = input_schemas[0].fields() {
                for f in fields {
                    manipulated.push((Path::attr(&f.name), Path::attr(&f.name)));
                }
            }
            let (_, renames) = merge_item_schemas(0, input_schemas[0], input_schemas[1])
                .unwrap_or((DataType::Null, Vec::new()));
            for (orig, renamed) in renames {
                manipulated.push((Path::attr(orig), Path::attr(renamed)));
            }
            (
                vec![input(0, Some(left)), input(1, Some(right))],
                Some(manipulated),
            )
        }
        OpKind::Union => (
            vec![input(0, Some(Vec::new())), input(1, Some(Vec::new()))],
            Some(Vec::new()),
        ),
        OpKind::Flatten { col, new_attr } => {
            let elem = col.to_schema_level().child(Step::AnyPos);
            (
                vec![input(0, Some(vec![elem.clone()]))],
                Some(vec![(elem, Path::attr(new_attr))]),
            )
        }
        OpKind::GroupAggregate { keys, aggs } => {
            let mut accessed: Vec<Path> = Vec::new();
            let mut manipulated = Vec::new();
            for k in keys {
                let p = k.path.to_schema_level();
                if !accessed.contains(&p) {
                    accessed.push(p.clone());
                }
                manipulated.push((p, Path::attr(&k.name)));
            }
            for a in aggs {
                if a.input.is_empty() {
                    if a.func == AggFunc::CollectList {
                        if let Some(fields) = input_schemas[0].fields() {
                            let base = Path::attr(&a.output).child(Step::AnyPos);
                            for f in fields {
                                manipulated
                                    .push((Path::attr(&f.name), base.child(Step::attr(&f.name))));
                            }
                        }
                    }
                    continue;
                }
                let p = a.input.to_schema_level();
                if !accessed.contains(&p) {
                    accessed.push(p.clone());
                }
                let out = if a.func == AggFunc::CollectList {
                    Path::attr(&a.output).child(Step::AnyPos)
                } else {
                    Path::attr(&a.output)
                };
                manipulated.push((p, out));
            }
            (vec![input(0, Some(accessed))], Some(manipulated))
        }
    }
}
