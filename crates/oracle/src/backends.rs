//! Differential axis for the capture backends.
//!
//! Mirrors the PR 2 / PR 7 pattern: for each generated case the why-not
//! and semiring backends are answered twice — by the **engine
//! implementations** (`pebble_core::whynot::why_not`,
//! `pebble_core::semiring::polynomial_of`) over the engine's captured
//! run, and by deliberately **naive references** in this module over the
//! reference interpreter's captured run — and the rendered,
//! identifier-free answers must agree byte for byte. The naive paths
//! share only the query grammar, the answer rendering, and the semantics
//! helpers that *define* the contract (route enumeration, backward
//! condition mapping, error strings); the provenance computation itself
//! (forward walks, polynomial expansion, derivation counting, world
//! evaluation) is written twice:
//!
//! * why-not: the engine advances candidate identifier sets through
//!   per-operator hash indexes; the reference walks **one candidate at a
//!   time** with linear scans of the association tables;
//! * semiring `POLY`: the engine expands bottom-up with memoization; the
//!   reference builds an unreduced expression tree per sink identifier
//!   and expands it top-down without memoization;
//! * semiring `COUNT`: the engine sums the expanded polynomial's
//!   coefficients; the reference counts derivation trees directly on the
//!   association-table circuit and never builds a polynomial;
//! * semiring `PROB`: the engine tests the expanded DNF per world; the
//!   reference evaluates the circuit per world recursively.
//!
//! On top of the reference comparison, every engine answer is required
//! to be byte-identical across execution shapes (partitions {2,7},
//! workers 2 with tiny morsels, columnar, one-byte spill budget) —
//! backend answers render only identifier-free quantities, so any drift
//! is a determinism bug. Malformed queries are fed to both sides on
//! every seed and must fail with `Display`-identical errors.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pebble_core::semiring::{
    self, parse_row_query, probability_by, row_range_error, Polynomial, SemiringVar,
};
use pebble_core::whynot::{
    self, condition_holds, enumerate_routes, map_condition_back, parse_whynot_query, read_ids,
    source_name, Condition, RouteExplanation, WhyNotAnswer,
};
use pebble_core::{run_captured, CapturedRun, ProvAssoc};
use pebble_dataflow::{Context, EngineError, ExecConfig, ItemId, OpId, Result};
use pebble_nested::{Path, Value};

use crate::diff::Divergence;
use crate::gen::Generated;
use crate::interp::run_reference;

/// One backend query of a generated case.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Query {
    WhyNot(String),
    Semiring(String),
}

impl Query {
    fn text(&self) -> &str {
        match self {
            Query::WhyNot(q) | Query::Semiring(q) => q,
        }
    }
}

/// Answers one query with the engine implementations.
fn engine_answer(run: &CapturedRun, ctx: &Context, q: &Query) -> Result<Vec<String>> {
    match q {
        Query::WhyNot(text) => {
            let conds = parse_whynot_query(text)?;
            Ok(whynot::why_not(run, ctx, &conds)?.render(run))
        }
        Query::Semiring(text) => {
            let (verb, index) = parse_row_query(text, &["POLY", "COUNT", "PROB"])?;
            Ok(vec![match verb {
                "POLY" => semiring::polynomial_of(run, index)?.render(),
                "COUNT" => semiring::polynomial_of(run, index)?.count().to_string(),
                _ => semiring::probability(&semiring::polynomial_of(run, index)?)?,
            }])
        }
    }
}

/// Answers one query with the naive reference implementations.
fn naive_answer(run: &CapturedRun, ctx: &Context, q: &Query) -> Result<Vec<String>> {
    match q {
        Query::WhyNot(text) => {
            let conds = parse_whynot_query(text)?;
            Ok(naive_why_not(run, ctx, &conds)?.render(run))
        }
        Query::Semiring(text) => {
            let (verb, index) = parse_row_query(text, &["POLY", "COUNT", "PROB"])?;
            Ok(vec![match verb {
                "POLY" => naive_polynomial(run, index)?.render(),
                "COUNT" => naive_count(run, index)?.to_string(),
                _ => naive_probability(run, index)?,
            }])
        }
    }
}

// ---------------------------------------------------------------------
// Naive why-not reference: one candidate at a time, linear scans only.
// ---------------------------------------------------------------------

fn naive_why_not(run: &CapturedRun, ctx: &Context, conds: &[Condition]) -> Result<WhyNotAnswer> {
    if conds.is_empty() {
        return Err(whynot::whynot_parse_error("empty question"));
    }
    let mut found = Vec::new();
    for (i, row) in run.output.rows.iter().enumerate() {
        if conds.iter().all(|c| condition_holds(c, &row.item)) {
            found.push(i);
        }
    }
    if !found.is_empty() {
        return Ok(WhyNotAnswer {
            found,
            routes: Vec::new(),
        });
    }

    let mut routes = Vec::new();
    for route in enumerate_routes(&run.program) {
        let source = source_name(&run.program, route.read_op)?;
        let items = ctx
            .source(&source)
            .ok_or_else(|| EngineError::UnknownSource(source.clone()))?;

        let mut traced_conditions = Vec::new();
        let mut source_conds = Vec::new();
        for (ci, cond) in conds.iter().enumerate() {
            let mut path = Some(cond.path.clone());
            for &(oid, side) in route.ops.iter().rev() {
                path = path.and_then(|p| map_condition_back(run, oid, side, &p));
            }
            if let Some(path) = path {
                traced_conditions.push(ci);
                source_conds.push(Condition {
                    path,
                    value: cond.value.clone(),
                });
            }
        }

        let ids = read_ids(run, route.read_op)?;
        let mut candidates = Vec::new();
        let mut pruned_at = Vec::new();
        let mut survived = Vec::new();
        for (index, item) in items.iter().enumerate() {
            if !source_conds.iter().all(|c| condition_holds(c, item)) {
                continue;
            }
            candidates.push(index);
            // Walk this one candidate forward, op by op, scanning the
            // association tables linearly.
            let mut alive: Vec<ItemId> = ids.get(index).copied().into_iter().collect();
            let mut frontier = None;
            for &(oid, side) in &route.ops {
                if alive.is_empty() {
                    break;
                }
                let mut next = Vec::new();
                for &id in &alive {
                    next.extend(scan_outputs(&run.op(oid).assoc, side, id));
                }
                next.sort_unstable();
                next.dedup();
                if next.is_empty() {
                    frontier = Some(oid);
                }
                alive = next;
            }
            pruned_at.push(frontier);
            let mut rows: Vec<usize> = Vec::new();
            for id in alive {
                for (pos, row) in run.output.rows.iter().enumerate() {
                    if row.id == id {
                        rows.push(pos);
                    }
                }
            }
            if !rows.is_empty() {
                rows.sort_unstable();
                survived.push((index, rows));
            }
        }

        routes.push(RouteExplanation {
            route,
            source,
            traced_conditions,
            candidates,
            pruned_at,
            survived,
        });
    }
    Ok(WhyNotAnswer {
        found: Vec::new(),
        routes,
    })
}

/// Linear scan of one association table: outputs produced from `id`
/// entering via `side`.
fn scan_outputs(assoc: &ProvAssoc, side: usize, id: ItemId) -> Vec<ItemId> {
    match assoc {
        ProvAssoc::Read(_) => Vec::new(),
        ProvAssoc::Unary(v) => v
            .iter()
            .filter(|&&(i, _)| i == id)
            .map(|&(_, o)| o)
            .collect(),
        ProvAssoc::Binary(v) => v
            .iter()
            .filter(|&&(l, r, _)| (if side == 0 { l } else { r }) == Some(id))
            .map(|&(_, _, o)| o)
            .collect(),
        ProvAssoc::Flatten(v) => v
            .iter()
            .filter(|&&(i, _, _)| i == id)
            .map(|&(_, _, o)| o)
            .collect(),
        ProvAssoc::Agg(v) => v
            .iter()
            .filter(|(members, _)| members.contains(&id))
            .map(|&(_, o)| o)
            .collect(),
    }
}

// ---------------------------------------------------------------------
// Naive semiring references.
// ---------------------------------------------------------------------

/// Unreduced derivation expression of one identifier.
enum NaiveExpr {
    Var(SemiringVar),
    Prod(Vec<NaiveExpr>),
}

/// Builds the expression tree of one identifier, no memoization.
fn naive_expr(run: &CapturedRun, oid: OpId, id: ItemId) -> Result<NaiveExpr> {
    let op = run.op(oid);
    let pred = |idx: usize| -> Result<OpId> {
        op.inputs.get(idx).and_then(|i| i.pred).ok_or_else(|| {
            EngineError::BacktraceError(format!("operator #{oid} input {idx} missing"))
        })
    };
    let missing = || {
        EngineError::BacktraceError(format!("identifier {id} not associated at operator #{oid}"))
    };
    Ok(match &op.assoc {
        ProvAssoc::Read(ids) => {
            let index = ids.iter().position(|&i| i == id).ok_or_else(missing)?;
            NaiveExpr::Var((oid, index))
        }
        ProvAssoc::Unary(v) => {
            let &(input, _) = v.iter().find(|&&(_, o)| o == id).ok_or_else(missing)?;
            naive_expr(run, pred(0)?, input)?
        }
        ProvAssoc::Binary(v) => {
            let &(l, r, _) = v.iter().find(|&&(_, _, o)| o == id).ok_or_else(missing)?;
            match (l, r) {
                (Some(l), Some(r)) => NaiveExpr::Prod(vec![
                    naive_expr(run, pred(0)?, l)?,
                    naive_expr(run, pred(1)?, r)?,
                ]),
                (Some(l), None) => naive_expr(run, pred(0)?, l)?,
                (None, Some(r)) => naive_expr(run, pred(1)?, r)?,
                (None, None) => return Err(missing()),
            }
        }
        ProvAssoc::Flatten(v) => {
            let &(input, _, _) = v.iter().find(|&&(_, _, o)| o == id).ok_or_else(missing)?;
            naive_expr(run, pred(0)?, input)?
        }
        ProvAssoc::Agg(v) => {
            let (members, _) = v.iter().find(|(_, o)| *o == id).ok_or_else(missing)?;
            let mut factors = Vec::new();
            for &m in members {
                factors.push(naive_expr(run, pred(0)?, m)?);
            }
            NaiveExpr::Prod(factors)
        }
    })
}

impl NaiveExpr {
    /// Top-down expansion into the canonical form, no memoization.
    fn expand(&self) -> Result<Polynomial> {
        Ok(match self {
            NaiveExpr::Var(v) => Polynomial::var(*v),
            NaiveExpr::Prod(fs) => {
                let mut p = Polynomial::one();
                for f in fs {
                    p = p.mul(&f.expand()?)?;
                }
                p
            }
        })
    }

    /// Distinct variables (leaves), ascending.
    fn variables(&self, out: &mut Vec<SemiringVar>) {
        match self {
            NaiveExpr::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            NaiveExpr::Prod(fs) => {
                for f in fs {
                    f.variables(out);
                }
            }
        }
    }
}

/// Sink identifiers carrying an item equal to output row `index`.
fn matching_sink_ids(run: &CapturedRun, index: usize) -> Result<Vec<ItemId>> {
    let rows = run.output.rows.len();
    let target = run
        .output
        .rows
        .get(index)
        .ok_or_else(|| row_range_error(index, rows))?;
    Ok(run
        .output
        .rows
        .iter()
        .filter(|r| r.item == target.item)
        .map(|r| r.id)
        .collect())
}

fn naive_polynomial(run: &CapturedRun, index: usize) -> Result<Polynomial> {
    let mut out = Polynomial::zero();
    for id in matching_sink_ids(run, index)? {
        out.add(&naive_expr(run, run.program.sink(), id)?.expand()?)?;
    }
    Ok(out)
}

/// Counts derivation trees on the association-table circuit directly,
/// never building a polynomial.
fn naive_count(run: &CapturedRun, index: usize) -> Result<u64> {
    fn trees(e: &NaiveExpr) -> u64 {
        match e {
            NaiveExpr::Var(_) => 1,
            NaiveExpr::Prod(fs) => fs.iter().map(trees).product::<u64>().max(1),
        }
    }
    let mut count = 0u64;
    for id in matching_sink_ids(run, index)? {
        count += trees(&naive_expr(run, run.program.sink(), id)?);
    }
    Ok(count)
}

/// Evaluates the probability by per-world circuit evaluation.
fn naive_probability(run: &CapturedRun, index: usize) -> Result<String> {
    let ids = matching_sink_ids(run, index)?;
    let mut vars: Vec<SemiringVar> = Vec::new();
    let mut exprs = Vec::new();
    for &id in &ids {
        let e = naive_expr(run, run.program.sink(), id)?;
        e.variables(&mut vars);
        exprs.push(e);
    }
    vars.sort_unstable();
    fn derivable(e: &NaiveExpr, world: &[SemiringVar]) -> bool {
        match e {
            NaiveExpr::Var(v) => world.contains(v),
            NaiveExpr::Prod(fs) => fs.iter().all(|f| derivable(f, world)),
        }
    }
    probability_by(&vars, |world| exprs.iter().any(|e| derivable(e, world)))
}

// ---------------------------------------------------------------------
// Query generation and the differential check.
// ---------------------------------------------------------------------

/// Malformed queries every seed must reject identically on both sides.
fn malformed_queries(rows: usize) -> Vec<Query> {
    vec![
        Query::Semiring("FROB 1".to_string()),
        Query::Semiring("POLY notanum".to_string()),
        Query::Semiring(format!("COUNT {}", rows + 17)),
        Query::Semiring("PROB".to_string()),
        Query::WhyNot(String::new()),
        Query::WhyNot("=5".to_string()),
        Query::WhyNot("a=".to_string()),
        Query::WhyNot("a=}".to_string()),
    ]
}

/// Scalar top-level-ish paths of an item, for building why-not questions.
fn scalar_paths(item: &pebble_nested::DataItem) -> Vec<(Path, Value)> {
    Path::path_set(item)
        .into_iter()
        .filter_map(|p| {
            let v = p.eval(item)?;
            match v {
                Value::Int(_) | Value::Str(_) | Value::Bool(_) | Value::Double(_) => {
                    Some((p.to_schema_level(), v.clone()))
                }
                _ => None,
            }
        })
        .collect()
}

fn render_condition(path: &Path, value: &Value) -> String {
    let lit = match value {
        Value::Str(s) => format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
        other => format!("{other}"),
    };
    format!("{path}={lit}")
}

/// Builds the seeded query set for one case.
fn backend_questions(gen: &Generated, baseline: &CapturedRun) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(gen.seed ^ 0xbacc_e27d_bacc_e27d);
    let mut queries = Vec::new();
    let n = baseline.output.rows.len();
    for _ in 0..3.min(n) {
        let i = rng.gen_range(0..n);
        queries.push(Query::Semiring(format!("POLY {i}")));
        queries.push(Query::Semiring(format!("COUNT {i}")));
        queries.push(Query::Semiring(format!("PROB {i}")));
    }
    if n > 0 {
        let row = &baseline.output.rows[rng.gen_range(0..n)];
        let paths = scalar_paths(&row.item);
        if !paths.is_empty() {
            // A "present" question (matches at least this row) …
            let (p, v) = &paths[rng.gen_range(0..paths.len())];
            queries.push(Query::WhyNot(format!("WHYNOT {}", render_condition(p, v))));
            // … and an "absent" one: same path, sentinel value.
            let sentinel = match v {
                Value::Int(_) | Value::Double(_) => Value::Int(-987_654_321),
                _ => Value::str("⊥-absent-sentinel"),
            };
            queries.push(Query::WhyNot(format!(
                "WHYNOT {}",
                render_condition(p, &sentinel)
            )));
            // A two-conjunct question mixing present and absent paths.
            let (p2, v2) = &paths[rng.gen_range(0..paths.len())];
            queries.push(Query::WhyNot(format!(
                "WHYNOT {},{}",
                render_condition(p, &sentinel),
                render_condition(p2, v2)
            )));
        }
    }
    // Questions over source paths — candidates exist even when the
    // output is empty.
    if let Some((_, items)) = gen.dataset.sources.first() {
        if let Some(item) = items.first() {
            let paths = scalar_paths(item);
            if !paths.is_empty() {
                let (p, v) = &paths[rng.gen_range(0..paths.len())];
                queries.push(Query::WhyNot(format!("WHYNOT {}", render_condition(p, v))));
            }
        }
    }
    queries
}

fn diverge(seed: u64, check: &str, detail: String) -> Option<Divergence> {
    Some(Divergence {
        seed,
        check: check.to_string(),
        detail,
    })
}

/// Renders an answer outcome for byte comparison.
fn outcome_text(r: &Result<Vec<String>>) -> String {
    match r {
        Ok(lines) => format!("ok:{}", lines.join("\n")),
        Err(e) => format!("err:{e}"),
    }
}

/// The backend differential check for one generated case.
pub fn check_backends(gen: &Generated) -> Option<Divergence> {
    let program = gen.spec.compile();
    let ctx = gen.dataset.context();
    let engine = run_captured(&program, &ctx, ExecConfig::with_partitions(1));
    let reference = run_reference(&program, &ctx);
    let (engine, reference) = match (engine, reference) {
        (Ok(e), Ok(r)) => (e, r),
        (Err(a), Err(b)) => {
            return (a.to_string() != b.to_string()).then(|| Divergence {
                seed: gen.seed,
                check: "backend run outcome".to_string(),
                detail: format!("errors differ: `{a}` vs `{b}`"),
            });
        }
        (Ok(_), Err(e)) => {
            return diverge(
                gen.seed,
                "backend run outcome",
                format!("engine succeeds, reference errors ({e})"),
            )
        }
        (Err(e), Ok(_)) => {
            return diverge(
                gen.seed,
                "backend run outcome",
                format!("engine errors ({e}), reference succeeds"),
            )
        }
    };

    compare_queries_and_shapes(gen, &program, &ctx, &engine, &reference)
}

/// The execution shapes every backend answer must be byte-identical across
/// (the determinism matrix of PR 2/PR 6, applied to rendered answers).
fn shape_matrix() -> [(&'static str, ExecConfig); 5] {
    [
        ("partitions 2", ExecConfig::with_partitions(2)),
        ("partitions 7", ExecConfig::with_partitions(7)),
        (
            "workers 2 / morsel 3",
            ExecConfig::with_partitions(1).workers(2).morsel_rows(3),
        ),
        ("columnar", ExecConfig::with_partitions(1).columnar(true)),
        (
            "spill budget 1",
            ExecConfig::with_partitions(1).mem_budget(1),
        ),
    ]
}

/// Shared tail of both backend checks: engine answers vs naive answers over
/// `naive_run`, byte for byte, then engine answers across every execution
/// shape vs the p=1 baseline, byte for byte.
fn compare_queries_and_shapes(
    gen: &Generated,
    program: &pebble_dataflow::Program,
    ctx: &Context,
    engine: &CapturedRun,
    naive_run: &CapturedRun,
) -> Option<Divergence> {
    let mut queries = backend_questions(gen, engine);
    queries.extend(malformed_queries(engine.output.rows.len()));

    // Engine vs naive reference, rendered answers byte for byte.
    let mut baseline_answers = Vec::new();
    for q in &queries {
        let e = engine_answer(engine, ctx, q);
        let r = naive_answer(naive_run, ctx, q);
        let (et, rt) = (outcome_text(&e), outcome_text(&r));
        if et != rt {
            return diverge(
                gen.seed,
                "backend engine vs naive reference",
                format!("query `{}`: `{et}` vs `{rt}`", q.text()),
            );
        }
        baseline_answers.push(et);
    }

    // Engine answers across execution shapes, byte for byte.
    for (shape, config) in shape_matrix() {
        let run = match run_captured(program, ctx, config) {
            Ok(r) => r,
            Err(e) => {
                return diverge(
                    gen.seed,
                    "backend shape outcome",
                    format!("{shape}: engine errors ({e}) where baseline succeeded"),
                )
            }
        };
        for (q, baseline) in queries.iter().zip(&baseline_answers) {
            let got = outcome_text(&engine_answer(&run, ctx, q));
            if got != *baseline {
                return diverge(
                    gen.seed,
                    "backend shape determinism",
                    format!("query `{}` at {shape}: `{got}` vs `{baseline}`", q.text()),
                );
            }
        }
    }
    None
}

/// Backend check over deliberately corrupted cases (see
/// [`crate::gen::generate_malformed`]).
///
/// The reference interpreter is skipped here — it does not contain UDF
/// panics — so when the corruption fires the check asserts every execution
/// shape rejects the run with the identical error, and when it does not
/// fire (the corrupted operator never saw a triggering row) the naive
/// answerers read the engine's own captured run: the query-evaluation
/// comparison still runs in full, only the capture comparison is waived.
pub fn check_backends_malformed(gen: &Generated) -> Option<Divergence> {
    let program = gen.spec.compile();
    let ctx = gen.dataset.context();
    let engine = match run_captured(&program, &ctx, ExecConfig::with_partitions(1)) {
        Ok(run) => run,
        Err(expect) => {
            let expect = expect.to_string();
            for (shape, config) in shape_matrix() {
                // At other partition counts identifiers — and hence the
                // failing-row id in the error text — legitimately move
                // (see `check_malformed`), so those shapes only have to
                // reject; the p=1 shapes must reject with the identical
                // `Display`.
                let same_ids = config.partitions == 1;
                match run_captured(&program, &ctx, config) {
                    Ok(_) => {
                        return diverge(
                            gen.seed,
                            "backend shape outcome",
                            format!("{shape}: engine succeeds where p=1 rejected ({expect})"),
                        )
                    }
                    Err(e) => {
                        if same_ids && e.to_string() != expect {
                            return diverge(
                                gen.seed,
                                "backend shape outcome",
                                format!("{shape}: rejects `{e}`, p=1 rejects `{expect}`"),
                            );
                        }
                    }
                }
            }
            return None;
        }
    };
    compare_queries_and_shapes(gen, &program, &ctx, &engine, &engine)
}

/// Fuzz driver for the backend axis over well-formed cases.
pub fn fuzz_backends(start_seed: u64, count: u64, stop_after: usize) -> crate::diff::FuzzOutcome {
    let mut outcome = crate::diff::FuzzOutcome::default();
    for seed in start_seed..start_seed.saturating_add(count) {
        let gen = crate::gen::generate(seed);
        outcome.checked += 1;
        if let Some(div) = check_backends(&gen) {
            outcome.divergences.push((gen, div));
            if stop_after > 0 && outcome.divergences.len() >= stop_after {
                break;
            }
        }
    }
    outcome
}

/// Fuzz driver for the backend axis over malformed cases.
pub fn fuzz_backends_malformed(
    start_seed: u64,
    count: u64,
    stop_after: usize,
) -> crate::diff::FuzzOutcome {
    let mut outcome = crate::diff::FuzzOutcome::default();
    for seed in start_seed..start_seed.saturating_add(count) {
        let gen = crate::gen::generate_malformed(seed);
        outcome.checked += 1;
        if let Some(div) = check_backends_malformed(&gen) {
            outcome.divergences.push((gen, div));
            if stop_after > 0 && outcome.divergences.len() >= stop_after {
                break;
            }
        }
    }
    outcome
}
