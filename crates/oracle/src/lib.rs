//! # pebble-oracle — the executable-spec oracle
//!
//! Testing infrastructure that holds the optimized engine to the paper's
//! semantics (Tab. 5 operator definitions, Tab. 6 association tables,
//! Algs. 1–4 backtracing):
//!
//! * [`interp`] — a deliberately naive single-threaded **reference
//!   interpreter**: every operator and its provenance-capture rule written
//!   directly from the definitions, cloning everywhere, with none of the
//!   engine's fusion / interning / hashing shortcuts;
//! * [`spec`] — **printable pipeline/dataset specifications**: generated
//!   cases are plain data that compiles to a [`pebble_dataflow::Program`]
//!   *and* prints back as Rust source;
//! * [`gen`] — a seeded, schema-aware **random pipeline generator** over
//!   Twitter/DBLP-shaped datasets;
//! * [`diff`] — the **differential runner** comparing reference vs fused
//!   vs unfused engine, capture on vs off, partition counts 1/2/7, and
//!   sampled backtraces;
//! * [`minimize`] — a greedy **failure minimizer** shrinking a diverging
//!   case to a 1-minimal repro and emitting it as a ready-to-paste
//!   regression test.
//!
//! See DESIGN.md, "Testing strategy: the Tab. 5 oracle".

#![warn(missing_docs)]

pub mod backends;
pub mod diff;
pub mod gen;
pub mod interp;
pub mod minimize;
pub mod spec;

pub use backends::{
    check_backends, check_backends_malformed, fuzz_backends, fuzz_backends_malformed,
};
pub use diff::{
    check, check_malformed, fuzz, fuzz_malformed, Divergence, FuzzOutcome, ALT_PARTITIONS,
};
pub use gen::{generate, generate_malformed, Generated};
pub use interp::{reference_config, run_reference};
pub use minimize::{minimize, minimize_with, regression_code};
pub use spec::{
    AggKind, CmpKind, ColSpec, DatasetSpec, LitSpec, OpSpec, PipelineSpec, PredSpec, UdfSpec,
};
