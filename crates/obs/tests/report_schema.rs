//! Schema-compatibility pin for the v2 run report.
//!
//! A fully-populated [`RunReport`] must render **byte-for-byte** to the
//! pinned JSON below. Any key rename, reorder, or removal — or a change
//! to the number formatting — fails this test and forces a conscious
//! [`REPORT_SCHEMA_VERSION`] decision; additions within v2 must extend
//! the fixture here in the same commit.

use pebble_obs::report::{
    BackendStats, ColumnarStats, DurationSummary, MorselStats, OpReport, PoolStats,
    ProvenanceStats, RunReport, ServeStats, SpillStats, REPORT_SCHEMA_VERSION,
};

/// Every section populated; values chosen to be visibly distinct.
fn full_report() -> RunReport {
    let mut r = RunReport {
        executor: "pool".into(),
        metrics: true,
        outcome: "ok".into(),
        error: None,
        partitions: 4,
        workers: 3,
        morsel_rows: 256,
        elapsed_ns: 123_456_789,
        spans: 17,
        ..RunReport::default()
    };
    r.sources = vec![("inproceedings".into(), 6000), ("proceedings".into(), 400)];
    r.operators = vec![
        OpReport {
            op: 0,
            op_type: "read".into(),
            udf: false,
            rows_in: 0,
            rows_out: 6000,
            morsels: 8,
            udf_panics: 0,
            busy_ns: 1_000_000,
            assoc_entries: 6000,
            assoc_bytes: 48_000,
            spill_bytes: 0,
        },
        OpReport {
            op: 1,
            op_type: "filter".into(),
            udf: true,
            rows_in: 6000,
            rows_out: 1500,
            morsels: 8,
            udf_panics: 1,
            busy_ns: 2_000_000,
            assoc_entries: 1500,
            assoc_bytes: 12_000,
            spill_bytes: 4096,
        },
    ];
    r.morsels = {
        let mut m = MorselStats::default();
        m.observe(100);
        m.observe(700);
        m.observe(400);
        m
    };
    r.morsel_durations = Some(DurationSummary {
        count: 16,
        sum_ns: 32_000_000,
        p50_ns: 1_900_543,
        p90_ns: 3_930_111,
        p99_ns: 8_126_463,
        p999_ns: 8_126_463,
    });
    r.pool = Some(PoolStats {
        workers: 3,
        jobs: 24,
        max_queue_depth: 7,
        max_active: 3,
    });
    r.provenance = Some(ProvenanceStats {
        entries: 7500,
        lineage_bytes: 60_000,
        structural_bytes: 9000,
    });
    r.columnar = Some(ColumnarStats {
        batches: 12,
        batch_rows: {
            let mut m = MorselStats::default();
            m.observe(128);
            m.observe(512);
            m
        },
        filter_in: 6000,
        filter_kept: 1500,
        id_ranges: 10,
        id_pairs: 300,
        fallback_units: 1,
    });
    r.serve = Some(ServeStats {
        connections: 9,
        queries: 40,
        errors: 2,
        panics_contained: 1,
        frames_sent: 200,
        query_durations: Some(DurationSummary {
            count: 40,
            sum_ns: 90_000_000,
            p50_ns: 1_966_079,
            p90_ns: 4_128_767,
            p99_ns: 16_252_927,
            p999_ns: 16_252_927,
        }),
    });
    r.spill = Some(SpillStats {
        budget_bytes: 1 << 20,
        peak_tracked_bytes: 900_000,
        spills: 5,
        spill_bytes: 450_000,
        reloads: 5,
        capture_spills: 2,
        capture_spill_bytes: 80_000,
    });
    r.backend = Some(BackendStats {
        name: "structural".into(),
        forces_row_path: false,
    });
    r
}

const PINNED_V2: &str = include_str!("fixtures/report_v2.json");

#[test]
fn v2_report_renders_byte_identically_to_pin() {
    assert_eq!(REPORT_SCHEMA_VERSION, 2, "fixture pins the v2 layout");
    let json = full_report().to_json();
    assert_eq!(
        json, PINNED_V2,
        "RunReport::to_json diverged from the pinned v2 fixture — \
         bump REPORT_SCHEMA_VERSION or update tests/fixtures/report_v2.json \
         in the same commit"
    );
}

/// Maintenance helper: `cargo test -p pebble-obs --test report_schema \
/// regenerate_fixture -- --ignored` rewrites the pin after an intentional
/// (version-bumped) layout change.
#[test]
#[ignore]
fn regenerate_fixture() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/report_v2.json");
    std::fs::write(path, full_report().to_json()).expect("write fixture");
}

#[test]
fn error_report_renders_error_string() {
    let r = RunReport {
        outcome: "error".into(),
        error: Some("worker panicked: \"boom\"".into()),
        ..RunReport::default()
    };
    let json = r.to_json();
    assert!(json.contains("\"error\": \"worker panicked: \\\"boom\\\"\""));
}
