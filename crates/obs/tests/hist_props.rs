//! Property-based tests of the log-bucketed latency histogram: quantile
//! estimates must stay within one bucket of the exact order statistic,
//! merging must be associative and commutative (the contract that makes
//! per-shard histograms aggregable in any order), and sums must saturate
//! rather than wrap at `u64::MAX`.

use proptest::prelude::*;

use pebble_obs::{bucket_index, bucket_upper, HistogramSnapshot, LogHistogram};

fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let h = LogHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h.snapshot()
}

/// Exact order statistic with the same rounding convention as
/// [`HistogramSnapshot::quantile`]: smallest value covering a `q`
/// fraction of the samples.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn samples_strategy() -> impl Strategy<Value = Vec<u64>> {
    // Mix magnitudes so buckets across the whole log range are hit.
    prop::collection::vec(
        prop_oneof![
            0u64..100,
            100u64..100_000,
            100_000u64..10_000_000_000,
            Just(u64::MAX),
        ],
        1..200,
    )
}

proptest! {
    /// The estimated quantile never undershoots the exact order statistic
    /// and never overshoots the upper bound of that statistic's bucket —
    /// i.e. the error is at most one bucket width (≤ 1/16 relative).
    #[test]
    fn quantile_error_bounded_by_bucket_width(samples in samples_strategy()) {
        let snap = snapshot_of(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.5f64, 0.9, 0.99, 0.999] {
            let exact = exact_quantile(&sorted, q);
            let est = snap.quantile(q);
            prop_assert!(est >= exact, "q={q}: estimate {est} < exact {exact}");
            prop_assert!(
                est <= bucket_upper(bucket_index(exact)),
                "q={q}: estimate {est} beyond the bucket of exact {exact}"
            );
        }
    }

    /// Merging snapshots is associative and commutative, and merging
    /// equals recording the concatenated sample stream directly.
    #[test]
    fn merge_is_associative_and_commutative(
        a in samples_strategy(),
        b in samples_strategy(),
        c in samples_strategy(),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        let mut right_inner = sb.clone();
        right_inner.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_inner);
        prop_assert_eq!(&left, &right);

        let mut ba = sb.clone();
        ba.merge(&sa);
        let mut ab = sa.clone();
        ab.merge(&sb);
        prop_assert_eq!(&ab, &ba);

        let mut concat = a.clone();
        concat.extend_from_slice(&b);
        concat.extend_from_slice(&c);
        prop_assert_eq!(&left, &snapshot_of(&concat));
    }

    /// Sums saturate at `u64::MAX` instead of wrapping, `max` and the top
    /// quantile report `u64::MAX`, and counts stay exact.
    #[test]
    fn saturation_at_u64_max(extra in prop::collection::vec(0u64..1_000_000, 0..20)) {
        let h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        for &s in &extra {
            h.record(s);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, extra.len() as u64 + 2);
        prop_assert_eq!(snap.sum, u64::MAX);
        prop_assert_eq!(snap.max, u64::MAX);
        prop_assert_eq!(snap.quantile(0.999), u64::MAX);

        // Merging two saturated snapshots must also saturate, not wrap.
        let mut doubled = snap.clone();
        doubled.merge(&snap);
        prop_assert_eq!(doubled.sum, u64::MAX);
        prop_assert_eq!(doubled.count, 2 * (extra.len() as u64 + 2));
    }
}
