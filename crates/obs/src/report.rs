//! The self-describing run report.
//!
//! [`RunReport`] is a plain-old-data summary of one engine run: the
//! per-operator metrics table, morsel/skew statistics, pool gauges, and the
//! provenance-size breakdown. [`RunReport::to_json`] renders it with a
//! stable key order under a `schema_version` field so downstream tooling
//! (bench bins, the CI smoke) can validate it structurally.

/// Version of the JSON layout emitted by [`RunReport::to_json`]. Bump on any
/// key rename/removal; additions are allowed within a version.
///
/// v2: duration summaries gained `p90_ns`/`p999_ns` (one log-bucketed layout
/// shared by every `_ns` histogram in the system), and the `serve` section
/// gained `query_durations`. Every duration field carries the `_ns` suffix
/// and is in nanoseconds; quantiles are bucket upper bounds clamped to the
/// observed maximum.
pub const REPORT_SCHEMA_VERSION: u64 = 2;

/// Escapes a string for embedding inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Per-operator metrics row.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OpReport {
    /// Operator id (equal to its index in the program).
    pub op: u64,
    /// Operator type name (`read`, `filter`, `join`, …).
    pub op_type: String,
    /// True when the operator can invoke user code (map / UDF predicates).
    pub udf: bool,
    /// Rows flowing into the operator (sum over its inputs).
    pub rows_in: u64,
    /// Rows the operator produced.
    pub rows_out: u64,
    /// Morsels executed for the unit this operator heads (0 for fused
    /// non-head operators — their work is attributed to the chain head).
    pub morsels: u64,
    /// UDF panics caught and contained while running this operator.
    pub udf_panics: u64,
    /// Kernel nanoseconds attributed to this operator's unit (head only;
    /// populated only when metrics are enabled).
    pub busy_ns: u64,
    /// Provenance association-table entries recorded for this operator
    /// (0 when capture is off).
    pub assoc_entries: u64,
    /// Estimated bytes of those associations (id-payload estimate).
    pub assoc_bytes: u64,
    /// Bytes of this operator's state written to spill files (0 when the
    /// run had no memory budget or the operator never spilled).
    pub spill_bytes: u64,
}

/// Morsel-level statistics for skew diagnosis.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MorselStats {
    /// Total morsels (tasks) executed.
    pub executed: u64,
    /// Smallest morsel, in input rows.
    pub min_rows: u64,
    /// Largest morsel, in input rows.
    pub max_rows: u64,
    /// Total rows across all morsels.
    pub total_rows: u64,
}

impl MorselStats {
    /// Mean rows per morsel (0.0 when none ran).
    pub fn mean_rows(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.total_rows as f64 / self.executed as f64
        }
    }

    /// Skew factor: largest morsel over the mean (1.0 = perfectly even).
    pub fn skew(&self) -> f64 {
        let mean = self.mean_rows();
        if mean == 0.0 {
            0.0
        } else {
            self.max_rows as f64 / mean
        }
    }

    /// Folds one morsel of `rows` input rows into the stats.
    pub fn observe(&mut self, rows: u64) {
        if self.executed == 0 || rows < self.min_rows {
            self.min_rows = rows;
        }
        if rows > self.max_rows {
            self.max_rows = rows;
        }
        self.executed += 1;
        self.total_rows += rows;
    }
}

/// Summary of a duration histogram (metrics-on runs only).
///
/// All fields are nanoseconds (`_ns` suffix convention); quantiles are
/// bucket upper bounds of the shared log-bucketed layout
/// ([`crate::metrics::LogHistogram`]), clamped to the observed maximum.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DurationSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples, ns.
    pub sum_ns: u64,
    /// Median, ns.
    pub p50_ns: u64,
    /// 90th percentile, ns.
    pub p90_ns: u64,
    /// 99th percentile, ns.
    pub p99_ns: u64,
    /// 99.9th percentile, ns.
    pub p999_ns: u64,
}

impl DurationSummary {
    /// Summarizes a histogram snapshot (shared by the run report, the
    /// service `STATS` document, and the bench bins — one layout, one
    /// quantile rule).
    pub fn from_snapshot(h: &crate::metrics::HistogramSnapshot) -> DurationSummary {
        let (p50, p90, p99, p999) = h.percentiles();
        DurationSummary {
            count: h.count,
            sum_ns: h.sum,
            p50_ns: p50,
            p90_ns: p90,
            p99_ns: p99,
            p999_ns: p999,
        }
    }

    /// Renders the summary as a one-line JSON object (stable key order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\": {}, \"sum_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \
             \"p99_ns\": {}, \"p999_ns\": {}}}",
            self.count, self.sum_ns, self.p50_ns, self.p90_ns, self.p99_ns, self.p999_ns,
        )
    }
}

/// Worker-pool gauges sampled (lock-free) during the run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PoolStats {
    /// Pool size (worker threads).
    pub workers: u64,
    /// Jobs this run handed to the pool (morsels not run inline).
    pub jobs: u64,
    /// Highest queue depth observed by the scheduler's samples.
    pub max_queue_depth: u64,
    /// Highest concurrently-active worker count observed.
    pub max_active: u64,
}

/// Provenance capture size breakdown (capture runs only).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProvenanceStats {
    /// Association-table entries across all operators.
    pub entries: u64,
    /// Exact bytes of lineage ids (Tab. 6 associations).
    pub lineage_bytes: u64,
    /// Exact bytes of structural extras (paths, shapes).
    pub structural_bytes: u64,
}

/// Columnar-execution statistics (populated only when the run executed
/// with the columnar kernels enabled).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ColumnarStats {
    /// Column batches materialized by vectorized select stages.
    pub batches: u64,
    /// Rows-per-batch distribution over the morsels fed to vectorized
    /// chains (same shape as the morsel statistics).
    pub batch_rows: MorselStats,
    /// Rows considered by vectorized filter stages.
    pub filter_in: u64,
    /// Rows those filters kept (selection-vector survivors).
    pub filter_kept: u64,
    /// Provenance associations emitted as contiguous id *ranges*.
    pub id_ranges: u64,
    /// Provenance associations emitted as expanded per-row pairs.
    pub id_pairs: u64,
    /// Chain units that fell back to the row path (UDF stages, duplicate
    /// select labels).
    pub fallback_units: u64,
}

impl ColumnarStats {
    /// Fraction of filter-considered rows that survived (1.0 when no
    /// vectorized filter ran).
    pub fn selection_density(&self) -> f64 {
        if self.filter_in == 0 {
            1.0
        } else {
            self.filter_kept as f64 / self.filter_in as f64
        }
    }
}

/// Query-service counters (populated by `pebble-serve` when a run report
/// is assembled for a serving session).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeStats {
    /// Connections the service accepted.
    pub connections: u64,
    /// Query requests parsed and executed.
    pub queries: u64,
    /// Queries that ended in an `ERROR` frame.
    pub errors: u64,
    /// Query jobs whose panic was contained by the pool.
    pub panics_contained: u64,
    /// Response frames written to clients.
    pub frames_sent: u64,
    /// End-to-end query latency distribution, ns (metrics-on services
    /// only; same bucket layout as every other `_ns` histogram).
    pub query_durations: Option<DurationSummary>,
}

/// Out-of-core execution statistics (populated only when the run had a
/// memory budget, i.e. `ExecConfig::mem_budget_bytes > 0`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpillStats {
    /// The configured budget, bytes.
    pub budget_bytes: u64,
    /// High-water mark of tracked pipeline-resident bytes.
    pub peak_tracked_bytes: u64,
    /// Spill events (operator outputs, grace-join bucket sets, group
    /// shuffle bucket sets written to disk).
    pub spills: u64,
    /// Total bytes written to executor spill files.
    pub spill_bytes: u64,
    /// Reload events (spilled blocks or buckets read back).
    pub reloads: u64,
    /// Capture-sink association chunks spilled to disk.
    pub capture_spills: u64,
    /// Total bytes of spilled capture association chunks.
    pub capture_spill_bytes: u64,
}

/// Capture-backend identification (populated by `run_for_backend` when a
/// run executes on behalf of a named provenance backend).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BackendStats {
    /// Registry name of the backend (`structural`, `whynot`, …).
    pub name: String,
    /// Whether the backend forced the row execution path.
    pub forces_row_path: bool,
}

/// A structured, serializable summary of one engine run.
///
/// Built for every run (cheap counters are always on); timing fields,
/// duration histograms and pool gauges are only populated when metrics were
/// enabled for the run. Reading the report never perturbs the run's rows,
/// ids, or provenance — it is assembled from side counters after the fact.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Layout version ([`REPORT_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Which executor produced the run: `pool`, `spawn`, or `reference`.
    pub executor: String,
    /// Whether metrics collection was enabled.
    pub metrics: bool,
    /// `ok` or `error`.
    pub outcome: String,
    /// The contained error's display string, when `outcome == "error"`.
    pub error: Option<String>,
    /// Partition count the run used.
    pub partitions: u64,
    /// Worker threads the run used.
    pub workers: u64,
    /// Configured morsel row cap (0 = auto).
    pub morsel_rows: u64,
    /// Wall-clock nanoseconds for the run (metrics runs only, else 0).
    pub elapsed_ns: u64,
    /// Source datasets read by the program: `(name, rows)`.
    pub sources: Vec<(String, u64)>,
    /// Per-operator metrics table, indexed by operator id.
    pub operators: Vec<OpReport>,
    /// Morsel/skew statistics.
    pub morsels: MorselStats,
    /// Morsel duration distribution (metrics runs only).
    pub morsel_durations: Option<DurationSummary>,
    /// Pool gauges (pool executor with metrics only).
    pub pool: Option<PoolStats>,
    /// Provenance size breakdown (capture runs only).
    pub provenance: Option<ProvenanceStats>,
    /// Columnar-execution statistics (columnar runs only).
    pub columnar: Option<ColumnarStats>,
    /// Query-service counters (serving sessions only).
    pub serve: Option<ServeStats>,
    /// Out-of-core execution statistics (memory-budgeted runs only).
    pub spill: Option<SpillStats>,
    /// Capture-backend identification (backend-driven runs only).
    pub backend: Option<BackendStats>,
    /// Number of span events recorded (tracing runs only).
    pub spans: u64,
}

impl Default for RunReport {
    fn default() -> Self {
        RunReport {
            schema_version: REPORT_SCHEMA_VERSION,
            executor: String::new(),
            metrics: false,
            outcome: String::new(),
            error: None,
            partitions: 0,
            workers: 0,
            morsel_rows: 0,
            elapsed_ns: 0,
            sources: Vec::new(),
            operators: Vec::new(),
            morsels: MorselStats::default(),
            morsel_durations: None,
            pool: None,
            provenance: None,
            columnar: None,
            serve: None,
            spill: None,
            backend: None,
            spans: 0,
        }
    }
}

impl RunReport {
    /// Total UDF panics caught across all operators.
    pub fn udf_panics(&self) -> u64 {
        self.operators.iter().map(|o| o.udf_panics).sum()
    }

    /// Renders the report as JSON with a stable key order.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512 + self.operators.len() * 192);
        s.push_str("{\n");
        s.push_str(&format!("  \"schema_version\": {},\n", self.schema_version));
        s.push_str(&format!(
            "  \"executor\": \"{}\",\n",
            json_escape(&self.executor)
        ));
        s.push_str(&format!("  \"metrics\": {},\n", self.metrics));
        s.push_str(&format!(
            "  \"outcome\": \"{}\",\n",
            json_escape(&self.outcome)
        ));
        match &self.error {
            Some(e) => s.push_str(&format!("  \"error\": \"{}\",\n", json_escape(e))),
            None => s.push_str("  \"error\": null,\n"),
        }
        s.push_str(&format!("  \"partitions\": {},\n", self.partitions));
        s.push_str(&format!("  \"workers\": {},\n", self.workers));
        s.push_str(&format!("  \"morsel_rows\": {},\n", self.morsel_rows));
        s.push_str(&format!("  \"elapsed_ns\": {},\n", self.elapsed_ns));
        s.push_str("  \"sources\": [");
        for (i, (name, rows)) in self.sources.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"name\": \"{}\", \"rows\": {}}}",
                json_escape(name),
                rows
            ));
        }
        s.push_str("],\n");
        s.push_str("  \"operators\": [\n");
        for (i, o) in self.operators.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"op\": {}, \"type\": \"{}\", \"udf\": {}, \"rows_in\": {}, \
                 \"rows_out\": {}, \"morsels\": {}, \"udf_panics\": {}, \"busy_ns\": {}, \
                 \"assoc_entries\": {}, \"assoc_bytes\": {}, \"spill_bytes\": {}}}{}\n",
                o.op,
                json_escape(&o.op_type),
                o.udf,
                o.rows_in,
                o.rows_out,
                o.morsels,
                o.udf_panics,
                o.busy_ns,
                o.assoc_entries,
                o.assoc_bytes,
                o.spill_bytes,
                if i + 1 < self.operators.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"morsels\": {{\"executed\": {}, \"min_rows\": {}, \"max_rows\": {}, \
             \"total_rows\": {}, \"mean_rows\": {:.3}, \"skew\": {:.3}}},\n",
            self.morsels.executed,
            self.morsels.min_rows,
            self.morsels.max_rows,
            self.morsels.total_rows,
            self.morsels.mean_rows(),
            self.morsels.skew(),
        ));
        match &self.morsel_durations {
            Some(d) => s.push_str(&format!("  \"morsel_durations\": {},\n", d.to_json())),
            None => s.push_str("  \"morsel_durations\": null,\n"),
        }
        match &self.pool {
            Some(p) => s.push_str(&format!(
                "  \"pool\": {{\"workers\": {}, \"jobs\": {}, \"max_queue_depth\": {}, \
                 \"max_active\": {}}},\n",
                p.workers, p.jobs, p.max_queue_depth, p.max_active,
            )),
            None => s.push_str("  \"pool\": null,\n"),
        }
        match &self.provenance {
            Some(p) => s.push_str(&format!(
                "  \"provenance\": {{\"entries\": {}, \"lineage_bytes\": {}, \
                 \"structural_bytes\": {}}},\n",
                p.entries, p.lineage_bytes, p.structural_bytes,
            )),
            None => s.push_str("  \"provenance\": null,\n"),
        }
        match &self.columnar {
            Some(c) => s.push_str(&format!(
                "  \"columnar\": {{\"batches\": {}, \"batch_rows\": {{\"executed\": {}, \
                 \"min_rows\": {}, \"max_rows\": {}, \"total_rows\": {}, \"mean_rows\": {:.3}}}, \
                 \"filter_in\": {}, \"filter_kept\": {}, \"selection_density\": {:.3}, \
                 \"id_ranges\": {}, \"id_pairs\": {}, \"fallback_units\": {}}},\n",
                c.batches,
                c.batch_rows.executed,
                c.batch_rows.min_rows,
                c.batch_rows.max_rows,
                c.batch_rows.total_rows,
                c.batch_rows.mean_rows(),
                c.filter_in,
                c.filter_kept,
                c.selection_density(),
                c.id_ranges,
                c.id_pairs,
                c.fallback_units,
            )),
            None => s.push_str("  \"columnar\": null,\n"),
        }
        match &self.serve {
            Some(v) => s.push_str(&format!(
                "  \"serve\": {{\"connections\": {}, \"queries\": {}, \"errors\": {}, \
                 \"panics_contained\": {}, \"frames_sent\": {}, \"query_durations\": {}}},\n",
                v.connections,
                v.queries,
                v.errors,
                v.panics_contained,
                v.frames_sent,
                match &v.query_durations {
                    Some(d) => d.to_json(),
                    None => "null".into(),
                },
            )),
            None => s.push_str("  \"serve\": null,\n"),
        }
        match &self.spill {
            Some(p) => s.push_str(&format!(
                "  \"spill\": {{\"budget_bytes\": {}, \"peak_tracked_bytes\": {}, \
                 \"spills\": {}, \"spill_bytes\": {}, \"reloads\": {}, \
                 \"capture_spills\": {}, \"capture_spill_bytes\": {}}},\n",
                p.budget_bytes,
                p.peak_tracked_bytes,
                p.spills,
                p.spill_bytes,
                p.reloads,
                p.capture_spills,
                p.capture_spill_bytes,
            )),
            None => s.push_str("  \"spill\": null,\n"),
        }
        match &self.backend {
            Some(b) => s.push_str(&format!(
                "  \"backend\": {{\"name\": \"{}\", \"forces_row_path\": {}}},\n",
                json_escape(&b.name),
                b.forces_row_path,
            )),
            None => s.push_str("  \"backend\": null,\n"),
        }
        s.push_str(&format!("  \"spans\": {}\n", self.spans));
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn morsel_stats() {
        let mut m = MorselStats::default();
        m.observe(10);
        m.observe(2);
        m.observe(30);
        assert_eq!(m.executed, 3);
        assert_eq!(m.min_rows, 2);
        assert_eq!(m.max_rows, 30);
        assert_eq!(m.total_rows, 42);
        assert!((m.mean_rows() - 14.0).abs() < 1e-9);
        assert!((m.skew() - 30.0 / 14.0).abs() < 1e-9);
    }

    #[test]
    fn default_carries_schema_version() {
        let r = RunReport::default();
        assert_eq!(r.schema_version, REPORT_SCHEMA_VERSION);
        let json = r.to_json();
        assert!(json.contains("\"schema_version\": 2"));
        assert!(json.contains("\"error\": null"));
        assert!(json.contains("\"pool\": null"));
    }

    #[test]
    fn duration_summary_renders_all_quantiles() {
        let d = DurationSummary {
            count: 4,
            sum_ns: 100,
            p50_ns: 20,
            p90_ns: 30,
            p99_ns: 40,
            p999_ns: 40,
        };
        let json = d.to_json();
        for key in ["count", "sum_ns", "p50_ns", "p90_ns", "p99_ns", "p999_ns"] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key}");
        }
        let r = RunReport {
            serve: Some(ServeStats {
                queries: 1,
                query_durations: Some(d),
                ..ServeStats::default()
            }),
            ..RunReport::default()
        };
        assert!(r.to_json().contains("\"query_durations\": {\"count\": 4"));
    }

    #[test]
    fn json_has_stable_keys() {
        let mut r = RunReport {
            executor: "pool".into(),
            outcome: "ok".into(),
            ..RunReport::default()
        };
        r.operators.push(OpReport {
            op: 0,
            op_type: "read".into(),
            ..OpReport::default()
        });
        r.pool = Some(PoolStats {
            workers: 4,
            jobs: 9,
            max_queue_depth: 3,
            max_active: 4,
        });
        let json = r.to_json();
        for key in [
            "schema_version",
            "executor",
            "metrics",
            "outcome",
            "error",
            "partitions",
            "workers",
            "morsel_rows",
            "elapsed_ns",
            "sources",
            "operators",
            "morsels",
            "morsel_durations",
            "pool",
            "provenance",
            "columnar",
            "serve",
            "spill",
            "backend",
            "spans",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing key {key}");
        }
    }
}
