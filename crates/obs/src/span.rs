//! Tracing spans: per-worker append buffers, deterministic merge, export.
//!
//! Span events are recorded into per-worker buffers (one shallow mutex per
//! worker slot, so workers never contend with each other) and merged at the
//! end of the run by sorting on the *logical* key
//! `(operator, phase, kind, task)` — never on wall-clock timestamps — so two
//! runs of the same program produce the same span sequence regardless of
//! thread interleaving. Timestamps are carried along for duration analysis
//! but do not influence the merge order.

use std::io::Write;
use std::sync::Mutex;

use crate::metrics::thread_slot;
use crate::report::json_escape;

/// What a span covers, coarsest to finest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// The whole run (one per execution).
    Run,
    /// One scheduler unit (a fused chain or a single operator).
    Unit,
    /// One phase of a unit (e.g. join build vs probe).
    Phase,
    /// One morsel-sized task within a phase.
    Morsel,
    /// Provenance capture finalization.
    Capture,
    /// A backtrace index build or probe.
    Backtrace,
    /// One service request (`op` = request-kind ordinal, `task` = query id).
    Query,
}

impl SpanKind {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Run => "run",
            SpanKind::Unit => "unit",
            SpanKind::Phase => "phase",
            SpanKind::Morsel => "morsel",
            SpanKind::Capture => "capture",
            SpanKind::Backtrace => "backtrace",
            SpanKind::Query => "query",
        }
    }

    fn rank(self) -> u8 {
        match self {
            SpanKind::Run => 0,
            SpanKind::Unit => 1,
            SpanKind::Phase => 2,
            SpanKind::Morsel => 3,
            SpanKind::Capture => 4,
            SpanKind::Backtrace => 5,
            SpanKind::Query => 6,
        }
    }
}

/// One recorded span. `op`/`task` use `u32::MAX` for "not applicable".
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Granularity of the span.
    pub kind: SpanKind,
    /// Human-readable label (operator type or phase name).
    pub name: &'static str,
    /// Operator id the span belongs to (head operator for fused chains).
    pub op: u32,
    /// Phase ordinal within the unit (0 = first pass, 1 = second pass).
    pub phase: u8,
    /// Task (morsel) index within the phase.
    pub task: u32,
    /// Worker slot that executed the span.
    pub worker: u32,
    /// Start offset in nanoseconds since the run began.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Rows produced by the span (0 when not applicable).
    pub rows: u64,
}

impl SpanEvent {
    /// The deterministic merge key: `(op, phase, kind, task)`, with the run
    /// span sorting last (it closes the trace).
    fn key(&self) -> (u32, u8, u8, u32) {
        (self.op, self.phase, self.kind.rank(), self.task)
    }

    /// Renders the span as one NDJSON object.
    pub fn to_ndjson(&self) -> String {
        format!(
            "{{\"kind\":\"{}\",\"name\":\"{}\",\"op\":{},\"phase\":{},\"task\":{},\
             \"worker\":{},\"start_ns\":{},\"dur_ns\":{},\"rows\":{}}}",
            self.kind.name(),
            json_escape(self.name),
            self.op,
            self.phase,
            self.task,
            self.worker,
            self.start_ns,
            self.dur_ns,
            self.rows,
        )
    }

    /// Renders the span as one chrome://tracing complete event (`ph: "X"`).
    pub fn to_chrome(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\
             \"pid\":1,\"tid\":{},\"args\":{{\"op\":{},\"phase\":{},\"task\":{},\"rows\":{}}}}}",
            json_escape(self.name),
            self.kind.name(),
            self.start_ns / 1000,
            self.start_ns % 1000,
            self.dur_ns / 1000,
            self.dur_ns % 1000,
            self.worker,
            self.op,
            self.phase,
            self.task,
            self.rows,
        )
    }
}

/// Per-worker span buffers. Each worker slot appends under its own mutex,
/// so recording never contends across workers; the merge locks each buffer
/// once at the end of the run.
pub struct TraceCollector {
    buffers: Box<[Mutex<Vec<SpanEvent>>]>,
}

impl TraceCollector {
    /// Creates `n.max(1)` empty per-worker buffers.
    pub fn new(n: usize) -> Self {
        let mut buffers = Vec::with_capacity(n.max(1));
        buffers.resize_with(n.max(1), || Mutex::new(Vec::new()));
        TraceCollector {
            buffers: buffers.into_boxed_slice(),
        }
    }

    /// Appends a span to the calling thread's buffer.
    pub fn record(&self, mut event: SpanEvent) {
        let slot = thread_slot() % self.buffers.len();
        event.worker = slot as u32;
        let mut buf = self.buffers[slot].lock().unwrap_or_else(|p| p.into_inner());
        buf.push(event);
    }

    /// Drains all buffers and merges them deterministically by
    /// `(op, phase, kind, task)` — independent of thread interleaving.
    pub fn drain_sorted(&self) -> Vec<SpanEvent> {
        let mut all = Vec::new();
        for buf in self.buffers.iter() {
            let mut guard = buf.lock().unwrap_or_else(|p| p.into_inner());
            all.append(&mut guard);
        }
        all.sort_by_key(|e| e.key());
        all
    }
}

/// Writes spans to `path`: chrome://tracing JSON when the path ends in
/// `.chrome.json` (file replaced), NDJSON otherwise (appended, so multiple
/// runs of one process accumulate).
pub fn export(path: &str, spans: &[SpanEvent]) -> std::io::Result<()> {
    if path.ends_with(".chrome.json") {
        let mut body = String::from("[\n");
        for (i, s) in spans.iter().enumerate() {
            body.push_str(&s.to_chrome());
            if i + 1 < spans.len() {
                body.push(',');
            }
            body.push('\n');
        }
        body.push_str("]\n");
        std::fs::write(path, body)
    } else {
        let mut out = String::new();
        for s in spans {
            out.push_str(&s.to_ndjson());
            out.push('\n');
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(out.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: SpanKind, op: u32, phase: u8, task: u32) -> SpanEvent {
        SpanEvent {
            kind,
            name: "t",
            op,
            phase,
            task,
            worker: 0,
            start_ns: 0,
            dur_ns: 1,
            rows: 0,
        }
    }

    #[test]
    fn merge_is_deterministic_and_logical() {
        let c = TraceCollector::new(2);
        // Record out of logical order.
        c.record(ev(SpanKind::Morsel, 1, 0, 2));
        c.record(ev(SpanKind::Morsel, 0, 0, 1));
        c.record(ev(SpanKind::Phase, 1, 0, 0));
        c.record(ev(SpanKind::Morsel, 0, 0, 0));
        c.record(ev(SpanKind::Run, u32::MAX, 0, 0));
        let spans = c.drain_sorted();
        let keys: Vec<_> = spans.iter().map(|e| (e.op, e.kind, e.task)).collect();
        assert_eq!(
            keys,
            vec![
                (0, SpanKind::Morsel, 0),
                (0, SpanKind::Morsel, 1),
                (1, SpanKind::Phase, 0),
                (1, SpanKind::Morsel, 2),
                (u32::MAX, SpanKind::Run, 0),
            ]
        );
        // Draining again yields nothing.
        assert!(c.drain_sorted().is_empty());
    }

    #[test]
    fn ndjson_shape() {
        let line = ev(SpanKind::Morsel, 3, 1, 7).to_ndjson();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"kind\":\"morsel\""));
        assert!(line.contains("\"op\":3"));
        assert!(line.contains("\"phase\":1"));
        assert!(line.contains("\"task\":7"));
    }
}
