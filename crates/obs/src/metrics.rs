//! Lock-free metric primitives.
//!
//! The metrics core is built from two pieces:
//!
//! * [`LogHistogram`] — a fixed-size log-bucketed (log-linear, HDR-style)
//!   histogram of `u64` samples. Recording is a handful of relaxed atomic
//!   adds into the bucket indexed by the sample's exponent and a
//!   [`HIST_SUB`]-way linear sub-bucket; there is no allocation and no
//!   lock. Buckets are ≤ 1/16 wide relative to their lower bound, so
//!   quantile extraction (p50/p90/p99/p999) is exact to within one bucket
//!   width. Snapshots merge associatively, so per-shard histograms
//!   aggregate without coordination.
//! * [`ShardSet`] — cache-line-padded per-worker [`Shard`]s. Each OS thread
//!   is assigned a stable slot index on first use (a global counter sampled
//!   into a thread-local) and always writes `slot % shards`, so worker
//!   threads never contend on the same cache line. Aggregation walks all
//!   shards on demand with relaxed loads.
//!
//! Relaxed ordering is sufficient everywhere: metric values are advisory
//! telemetry and are only aggregated after the run's scheduler has joined
//! all task results through its channel (which provides the needed
//! happens-before edge for exact totals at run end).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};

/// log2 of the linear sub-buckets per power of two.
pub const HIST_SUB_BITS: u32 = 4;

/// Linear sub-buckets per power of two: every bucket above the linear
/// range is at most `1/HIST_SUB` wide relative to its lower bound.
pub const HIST_SUB: usize = 1 << HIST_SUB_BITS;

/// Number of buckets in a [`LogHistogram`]: `HIST_SUB` exact buckets for
/// values `0..HIST_SUB`, then `HIST_SUB` sub-buckets for each exponent
/// `HIST_SUB_BITS..=63`.
pub const HIST_BUCKETS: usize = HIST_SUB * (64 - HIST_SUB_BITS as usize + 1);

/// Bucket index holding sample `v`. Values below [`HIST_SUB`] get exact
/// buckets; larger values share an exponent bucket split [`HIST_SUB`] ways.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < HIST_SUB as u64 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize;
        let shift = exp - HIST_SUB_BITS as usize;
        ((exp - HIST_SUB_BITS as usize) << HIST_SUB_BITS) + (v >> shift) as usize
    }
}

/// Smallest sample landing in bucket `i` (the bucket's inclusive lower
/// bound).
#[inline]
pub fn bucket_lower(i: usize) -> u64 {
    debug_assert!(i < HIST_BUCKETS);
    if i < HIST_SUB {
        i as u64
    } else {
        let exp = (i >> HIST_SUB_BITS) + HIST_SUB_BITS as usize - 1;
        ((i & (HIST_SUB - 1)) as u64 + HIST_SUB as u64) << (exp - HIST_SUB_BITS as usize)
    }
}

/// Largest sample landing in bucket `i` (the bucket's inclusive upper
/// bound; the top bucket saturates at `u64::MAX`).
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i + 1 >= HIST_BUCKETS {
        u64::MAX
    } else {
        bucket_lower(i + 1) - 1
    }
}

/// Adds `v` to an atomic counter with saturation instead of wrap-around —
/// a sum that has hit `u64::MAX` stays there (relevant only for
/// pathological inputs like repeated `u64::MAX` samples).
fn saturating_fetch_add(cell: &AtomicU64, v: u64) {
    let mut cur = cell.load(Relaxed);
    loop {
        let next = cur.saturating_add(v);
        match cell.compare_exchange_weak(cur, next, Relaxed, Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A fixed-bucket log-linear histogram of `u64` samples (typically
/// nanoseconds). All updates are relaxed atomics; recording never locks or
/// allocates. This is the single bucket layout shared by every latency
/// histogram in the system (morsel durations, backtrace probes, service
/// request latencies) — snapshots from any of them merge losslessly.
pub struct LogHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        LogHistogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free; the sample sum saturates at
    /// `u64::MAX` rather than wrapping.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        saturating_fetch_add(&self.sum, v);
        self.max.fetch_max(v, Relaxed);
    }

    /// Takes a point-in-time snapshot (relaxed loads).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }
}

/// An owned copy of a [`LogHistogram`]'s state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (bucket `i` covers
    /// `[bucket_lower(i), bucket_upper(i)]`).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples (saturating).
    pub sum: u64,
    /// Largest recorded sample.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Merges another snapshot into this one. Merging is associative and
    /// commutative (counts add, sums saturate, maxima take the larger), so
    /// shard snapshots can be folded in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound (inclusive) of the bucket containing quantile
    /// `q ∈ [0, 1]`, clamped to the largest recorded sample.
    ///
    /// The rank-`q` sample lies in the returned bucket, so the reported
    /// value overshoots the true quantile by at most one bucket width —
    /// ≤ 1/16 relative error above the linear range, exact below it.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// The standard latency quartet `(p50, p90, p99, p999)`.
    pub fn percentiles(&self) -> (u64, u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.quantile(0.999),
        )
    }

    /// Subtracts an earlier snapshot, yielding the delta between the two
    /// (the time-windowed view). The delta keeps the later snapshot's
    /// `max` — a conservative upper bound for the window.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for (i, slot) in out.buckets.iter_mut().enumerate() {
            *slot = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        out.max = self.max;
        out
    }
}

/// One cache-line-padded metrics shard. Each worker thread owns (modulo slot
/// wrap-around) one shard and updates it with relaxed atomics only.
#[repr(align(128))]
#[derive(Default)]
pub struct Shard {
    /// Morsels (tasks) executed by this shard's thread.
    pub morsels: AtomicU64,
    /// Output rows produced across those morsels.
    pub rows: AtomicU64,
    /// Nanoseconds spent executing morsel kernels.
    pub busy_ns: AtomicU64,
    /// Distribution of per-morsel execution times (ns).
    pub morsel_ns: LogHistogram,
}

static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SLOT: usize = NEXT_SLOT.fetch_add(1, Relaxed);
}

/// Returns this thread's stable shard slot index (assigned on first use).
pub fn thread_slot() -> usize {
    SLOT.with(|s| *s)
}

/// A fixed set of per-worker [`Shard`]s, aggregated on demand.
pub struct ShardSet {
    shards: Box<[Shard]>,
}

impl ShardSet {
    /// Creates `n.max(1)` empty shards.
    pub fn new(n: usize) -> Self {
        let mut shards = Vec::with_capacity(n.max(1));
        shards.resize_with(n.max(1), Shard::default);
        ShardSet {
            shards: shards.into_boxed_slice(),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when the set holds no shards (never happens via [`ShardSet::new`]).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard assigned to the calling thread.
    pub fn shard(&self) -> &Shard {
        &self.shards[thread_slot() % self.shards.len()]
    }

    /// Aggregates all shards (relaxed loads).
    pub fn totals(&self) -> ShardTotals {
        let mut t = ShardTotals::default();
        for s in self.shards.iter() {
            t.morsels += s.morsels.load(Relaxed);
            t.rows += s.rows.load(Relaxed);
            t.busy_ns += s.busy_ns.load(Relaxed);
            t.morsel_ns.merge(&s.morsel_ns.snapshot());
        }
        t
    }
}

/// Aggregated view over a [`ShardSet`].
#[derive(Clone, Debug, Default)]
pub struct ShardTotals {
    /// Total morsels executed.
    pub morsels: u64,
    /// Total output rows.
    pub rows: u64,
    /// Total busy nanoseconds.
    pub busy_ns: u64,
    /// Merged per-morsel duration histogram.
    pub morsel_ns: HistogramSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_contain_samples() {
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            33,
            1000,
            u32::MAX as u64,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(i < HIST_BUCKETS, "index {i} out of range for {v}");
            assert!(
                bucket_lower(i) <= v && v <= bucket_upper(i),
                "sample {v} outside bucket {i} [{}, {}]",
                bucket_lower(i),
                bucket_upper(i)
            );
        }
        // Buckets tile the domain: each upper bound is the next lower - 1.
        for i in 0..HIST_BUCKETS - 1 {
            assert_eq!(bucket_upper(i), bucket_lower(i + 1) - 1, "bucket {i}");
        }
        assert_eq!(bucket_upper(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LogHistogram::new();
        for v in [0u64, 1, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 1011);
        assert_eq!(s.max, 1000);
        // Values below HIST_SUB are exact.
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 2); // 1, 1
        assert_eq!(s.buckets[2], 1); // 2
        assert_eq!(s.buckets[3], 1); // 3
        assert_eq!(s.buckets[4], 1); // 4
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(0.3), 1);
        // 1000 ∈ [960, 1023]; clamped to the recorded max.
        assert_eq!(s.quantile(1.0), 1000);
        assert!(s.mean() > 0.0);
    }

    #[test]
    fn quantile_error_within_bucket_width() {
        let h = LogHistogram::new();
        for v in 0..10_000u64 {
            h.record(v * 37);
        }
        let s = h.snapshot();
        for q in [0.5f64, 0.9, 0.99, 0.999] {
            let rank = ((10_000.0 * q).ceil() as u64).max(1);
            let true_val = (rank - 1) * 37;
            let est = s.quantile(q);
            assert!(est >= true_val, "q={q}: {est} < true {true_val}");
            let width = bucket_upper(bucket_index(true_val)) - bucket_lower(bucket_index(true_val));
            assert!(
                est - true_val <= width,
                "q={q}: {est} overshoots true {true_val} by more than bucket width {width}"
            );
        }
    }

    #[test]
    fn saturation_at_max() {
        let h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, u64::MAX); // saturated, not wrapped
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.quantile(0.5), u64::MAX);
        assert_eq!(s.buckets[HIST_BUCKETS - 1], 2);
    }

    #[test]
    fn shard_set_aggregates() {
        let set = ShardSet::new(4);
        set.shard().morsels.fetch_add(3, Relaxed);
        set.shard().rows.fetch_add(10, Relaxed);
        set.shard().busy_ns.fetch_add(500, Relaxed);
        set.shard().morsel_ns.record(500);
        let t = set.totals();
        assert_eq!(t.morsels, 3);
        assert_eq!(t.rows, 10);
        assert_eq!(t.busy_ns, 500);
        assert_eq!(t.morsel_ns.count, 1);
    }

    #[test]
    fn delta_since_subtracts() {
        let h = LogHistogram::new();
        h.record(8);
        let before = h.snapshot();
        h.record(8);
        h.record(16);
        let delta = h.snapshot().delta_since(&before);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 24);
    }

    #[test]
    fn merge_is_associative() {
        let mk = |vals: &[u64]| {
            let h = LogHistogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let (a, b, c) = (mk(&[1, 50, 900]), mk(&[u64::MAX, 7]), mk(&[0, 0, 123456]));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
    }
}
