//! Lock-free metric primitives.
//!
//! The metrics core is built from two pieces:
//!
//! * [`Log2Histogram`] — a fixed-size (64 bucket) power-of-two histogram of
//!   `u64` samples. Recording is a single relaxed `fetch_add` into the bucket
//!   indexed by `floor(log2(v))`; there is no allocation and no lock.
//! * [`ShardSet`] — cache-line-padded per-worker [`Shard`]s. Each OS thread is
//!   assigned a stable slot index on first use (a global counter sampled into
//!   a thread-local) and always writes `slot % shards`, so worker threads
//!   never contend on the same cache line. Aggregation walks all shards on
//!   demand with relaxed loads.
//!
//! Relaxed ordering is sufficient everywhere: metric values are advisory
//! telemetry and are only aggregated after the run's scheduler has joined all
//! task results through its channel (which provides the needed happens-before
//! edge for exact totals at run end).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};

/// Number of buckets in a [`Log2Histogram`] — one per possible `floor(log2)`
/// of a `u64` sample.
pub const HIST_BUCKETS: usize = 64;

/// A fixed-bucket log2 histogram of `u64` samples (typically nanoseconds).
///
/// Bucket `i` counts samples `v` with `floor(log2(max(v, 1))) == i`, i.e.
/// `v ∈ [2^i, 2^(i+1))`. All updates are relaxed atomics.
pub struct Log2Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        Log2Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free; a zero sample lands in bucket 0.
    pub fn record(&self, v: u64) {
        let bucket = 63 - v.max(1).leading_zeros() as usize;
        self.buckets[bucket].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
    }

    /// Takes a point-in-time snapshot (relaxed loads).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
        }
    }
}

/// An owned copy of a [`Log2Histogram`]'s state.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (`buckets[i]` covers `[2^i, 2^(i+1))`).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Merges another snapshot into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound (exclusive) of the bucket containing quantile `q ∈ [0, 1]`.
    ///
    /// Resolution is a factor of two — good enough to tell a 2µs morsel from
    /// a 2ms one, which is what the skew diagnostics need.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
            }
        }
        u64::MAX
    }

    /// Subtracts an earlier snapshot, yielding the delta between the two.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for (i, slot) in out.buckets.iter_mut().enumerate() {
            *slot = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        out
    }
}

/// One cache-line-padded metrics shard. Each worker thread owns (modulo slot
/// wrap-around) one shard and updates it with relaxed atomics only.
#[repr(align(128))]
#[derive(Default)]
pub struct Shard {
    /// Morsels (tasks) executed by this shard's thread.
    pub morsels: AtomicU64,
    /// Output rows produced across those morsels.
    pub rows: AtomicU64,
    /// Nanoseconds spent executing morsel kernels.
    pub busy_ns: AtomicU64,
    /// Distribution of per-morsel execution times (ns).
    pub morsel_ns: Log2Histogram,
}

static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SLOT: usize = NEXT_SLOT.fetch_add(1, Relaxed);
}

/// Returns this thread's stable shard slot index (assigned on first use).
pub fn thread_slot() -> usize {
    SLOT.with(|s| *s)
}

/// A fixed set of per-worker [`Shard`]s, aggregated on demand.
pub struct ShardSet {
    shards: Box<[Shard]>,
}

impl ShardSet {
    /// Creates `n.max(1)` empty shards.
    pub fn new(n: usize) -> Self {
        let mut shards = Vec::with_capacity(n.max(1));
        shards.resize_with(n.max(1), Shard::default);
        ShardSet {
            shards: shards.into_boxed_slice(),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when the set holds no shards (never happens via [`ShardSet::new`]).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard assigned to the calling thread.
    pub fn shard(&self) -> &Shard {
        &self.shards[thread_slot() % self.shards.len()]
    }

    /// Aggregates all shards (relaxed loads).
    pub fn totals(&self) -> ShardTotals {
        let mut t = ShardTotals::default();
        for s in self.shards.iter() {
            t.morsels += s.morsels.load(Relaxed);
            t.rows += s.rows.load(Relaxed);
            t.busy_ns += s.busy_ns.load(Relaxed);
            t.morsel_ns.merge(&s.morsel_ns.snapshot());
        }
        t
    }
}

/// Aggregated view over a [`ShardSet`].
#[derive(Clone, Debug, Default)]
pub struct ShardTotals {
    /// Total morsels executed.
    pub morsels: u64,
    /// Total output rows.
    pub rows: u64,
    /// Total busy nanoseconds.
    pub busy_ns: u64,
    /// Merged per-morsel duration histogram.
    pub morsel_ns: HistogramSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Log2Histogram::new();
        for v in [0u64, 1, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 1011);
        assert_eq!(s.buckets[0], 3); // 0 (clamped), 1, 1
        assert_eq!(s.buckets[1], 2); // 2, 3
        assert_eq!(s.buckets[2], 1); // 4
        assert_eq!(s.buckets[9], 1); // 1000
        assert_eq!(s.quantile(0.0), 2);
        assert_eq!(s.quantile(1.0), 1 << 10);
        assert!(s.mean() > 0.0);
    }

    #[test]
    fn shard_set_aggregates() {
        let set = ShardSet::new(4);
        set.shard().morsels.fetch_add(3, Relaxed);
        set.shard().rows.fetch_add(10, Relaxed);
        set.shard().busy_ns.fetch_add(500, Relaxed);
        set.shard().morsel_ns.record(500);
        let t = set.totals();
        assert_eq!(t.morsels, 3);
        assert_eq!(t.rows, 10);
        assert_eq!(t.busy_ns, 500);
        assert_eq!(t.morsel_ns.count, 1);
    }

    #[test]
    fn delta_since_subtracts() {
        let h = Log2Histogram::new();
        h.record(8);
        let before = h.snapshot();
        h.record(8);
        h.record(16);
        let delta = h.snapshot().delta_since(&before);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 24);
    }
}
