//! Service-level metrics: per-request-type and per-connection aggregation
//! for a long-running query service.
//!
//! [`ServiceMetrics`] is the registry one server instance owns. Worker and
//! connection threads record into it with relaxed atomics only — no locks,
//! and in particular never the worker-pool job lock, so a scrape can never
//! stall query execution. Request latencies land in one
//! [`LogHistogram`] per [`RequestKind`], sharing the bucket layout of every
//! other `_ns` histogram in the system.
//!
//! Time windows are snapshot deltas: [`ServiceMetrics::snapshot`] is a
//! consistent-enough point-in-time copy, and
//! [`ServiceSnapshot::delta_since`] subtracts an earlier one, which is what
//! [`ServiceWindow`] uses to turn cumulative counters into windowed rates.
//! The `STATS` wire command renders a snapshot as versioned JSON via
//! [`ServiceSnapshot::to_stats_json`].

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

use crate::metrics::{HistogramSnapshot, LogHistogram};
use crate::report::DurationSummary;

/// Version of the JSON document returned by the `STATS` wire command
/// ([`ServiceSnapshot::to_stats_json`]). Bump on any key rename/removal;
/// additions are allowed within a version.
pub const STATS_SCHEMA_VERSION: u64 = 1;

/// The request types a provenance query service distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RequestKind {
    /// `BACKTRACE <row> [paths]` — whole-item or path-restricted backtrace.
    Backtrace,
    /// `PATTERN <tree pattern>` — backtrace of pattern-matching rows.
    Pattern,
    /// `HEATMAP <n>` — source usage heatmap.
    Heatmap,
    /// `AUDIT` — leaked/influencing attribute audit.
    Audit,
    /// `WHYNOT path=value[,…]` — missing-answer explanation.
    WhyNot,
    /// `STATS` — this very metrics snapshot.
    Stats,
    /// Anything else (unknown verbs, debug requests).
    Other,
}

/// Number of [`RequestKind`] variants (size of per-kind tables).
pub const REQUEST_KINDS: usize = 7;

impl RequestKind {
    /// All variants, in wire-stable order.
    pub const ALL: [RequestKind; REQUEST_KINDS] = [
        RequestKind::Backtrace,
        RequestKind::Pattern,
        RequestKind::Heatmap,
        RequestKind::Audit,
        RequestKind::WhyNot,
        RequestKind::Stats,
        RequestKind::Other,
    ];

    /// Classifies a request line by its leading verb.
    pub fn from_request(request: &str) -> RequestKind {
        let verb = request.split_whitespace().next().unwrap_or_default().trim();
        match verb {
            "BACKTRACE" => RequestKind::Backtrace,
            "PATTERN" => RequestKind::Pattern,
            "HEATMAP" => RequestKind::Heatmap,
            "AUDIT" => RequestKind::Audit,
            "WHYNOT" => RequestKind::WhyNot,
            "STATS" => RequestKind::Stats,
            _ => RequestKind::Other,
        }
    }

    /// Stable lowercase name used in JSON exports and span labels.
    pub fn name(self) -> &'static str {
        match self {
            RequestKind::Backtrace => "backtrace",
            RequestKind::Pattern => "pattern",
            RequestKind::Heatmap => "heatmap",
            RequestKind::Audit => "audit",
            RequestKind::WhyNot => "whynot",
            RequestKind::Stats => "stats",
            RequestKind::Other => "other",
        }
    }

    /// Index into per-kind tables.
    pub fn idx(self) -> usize {
        match self {
            RequestKind::Backtrace => 0,
            RequestKind::Pattern => 1,
            RequestKind::Heatmap => 2,
            RequestKind::Audit => 3,
            RequestKind::WhyNot => 4,
            RequestKind::Stats => 5,
            RequestKind::Other => 6,
        }
    }
}

/// Lock-free counters and latency histogram for one request type.
#[derive(Default)]
pub struct RequestStats {
    /// Requests parsed and dispatched.
    pub started: AtomicU64,
    /// Requests whose full frame sequence was computed.
    pub completed: AtomicU64,
    /// Requests that ended in a terminal `ERROR` frame.
    pub errors: AtomicU64,
    /// Content frames produced (the frames a client observes, excluding
    /// the bookkeeping `QID` frame).
    pub frames: AtomicU64,
    /// End-to-end request latency, ns (recorded only on metrics-enabled
    /// processes — counters above are always on).
    pub latency_ns: LogHistogram,
}

/// The service-wide metrics registry one server owns.
pub struct ServiceMetrics {
    start: Instant,
    /// Connections accepted.
    pub connections_opened: AtomicU64,
    /// Connections that have ended.
    pub connections_closed: AtomicU64,
    /// Requests currently in flight (started, not yet completed).
    pub in_flight: AtomicU64,
    /// Query jobs whose panic the worker pool contained.
    pub panics_contained: AtomicU64,
    /// Requests-per-connection distribution, recorded at connection close.
    pub requests_per_conn: LogHistogram,
    kinds: [RequestStats; REQUEST_KINDS],
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceMetrics {
    /// Creates an empty registry; the service uptime clock starts now.
    pub fn new() -> Self {
        ServiceMetrics {
            start: Instant::now(),
            connections_opened: AtomicU64::new(0),
            connections_closed: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            panics_contained: AtomicU64::new(0),
            requests_per_conn: LogHistogram::new(),
            kinds: Default::default(),
        }
    }

    /// Nanoseconds since the registry (the service) was created.
    pub fn uptime_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Per-kind stats table entry.
    pub fn kind(&self, kind: RequestKind) -> &RequestStats {
        &self.kinds[kind.idx()]
    }

    /// Records an accepted connection.
    pub fn connection_opened(&self) {
        self.connections_opened.fetch_add(1, Relaxed);
    }

    /// Records a finished connection that served `requests` requests.
    pub fn connection_closed(&self, requests: u64) {
        self.connections_closed.fetch_add(1, Relaxed);
        self.requests_per_conn.record(requests);
    }

    /// Marks one request of `kind` as started (and in flight).
    pub fn begin(&self, kind: RequestKind) {
        self.kind(kind).started.fetch_add(1, Relaxed);
        self.in_flight.fetch_add(1, Relaxed);
    }

    /// Marks one request of `kind` as finished. `latency_ns` is recorded
    /// only when given (callers skip the clock reads entirely on
    /// metrics-off processes).
    pub fn finish(&self, kind: RequestKind, error: bool, frames: u64, latency_ns: Option<u64>) {
        let k = self.kind(kind);
        k.completed.fetch_add(1, Relaxed);
        if error {
            k.errors.fetch_add(1, Relaxed);
        }
        k.frames.fetch_add(frames, Relaxed);
        if let Some(ns) = latency_ns {
            k.latency_ns.record(ns);
        }
        self.in_flight.fetch_sub(1, Relaxed);
    }

    /// Point-in-time copy of every counter and histogram.
    pub fn snapshot(&self) -> ServiceSnapshot {
        ServiceSnapshot {
            uptime_ns: self.uptime_ns(),
            connections_opened: self.connections_opened.load(Relaxed),
            connections_closed: self.connections_closed.load(Relaxed),
            in_flight: self.in_flight.load(Relaxed),
            panics_contained: self.panics_contained.load(Relaxed),
            requests_per_conn: self.requests_per_conn.snapshot(),
            kinds: RequestKind::ALL.map(|kind| {
                let k = self.kind(kind);
                KindSnapshot {
                    kind,
                    started: k.started.load(Relaxed),
                    completed: k.completed.load(Relaxed),
                    errors: k.errors.load(Relaxed),
                    frames: k.frames.load(Relaxed),
                    latency_ns: k.latency_ns.snapshot(),
                }
            }),
        }
    }
}

/// Snapshot of one request type's stats.
#[derive(Clone, Debug)]
pub struct KindSnapshot {
    /// The request type.
    pub kind: RequestKind,
    /// Requests started.
    pub started: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests ending in `ERROR`.
    pub errors: u64,
    /// Content frames produced.
    pub frames: u64,
    /// Latency distribution (empty on metrics-off processes).
    pub latency_ns: HistogramSnapshot,
}

/// Owned point-in-time view over a [`ServiceMetrics`].
#[derive(Clone, Debug)]
pub struct ServiceSnapshot {
    /// Nanoseconds the service had been up when the snapshot was taken.
    pub uptime_ns: u64,
    /// Connections accepted so far.
    pub connections_opened: u64,
    /// Connections ended so far.
    pub connections_closed: u64,
    /// Requests in flight at snapshot time.
    pub in_flight: u64,
    /// Panics contained so far.
    pub panics_contained: u64,
    /// Requests-per-connection distribution.
    pub requests_per_conn: HistogramSnapshot,
    /// Per-request-type stats, in [`RequestKind::ALL`] order.
    pub kinds: [KindSnapshot; REQUEST_KINDS],
}

impl ServiceSnapshot {
    /// Sum of `started` over all request types.
    pub fn total_started(&self) -> u64 {
        self.kinds.iter().map(|k| k.started).sum()
    }

    /// Sum of `completed` over all request types.
    pub fn total_completed(&self) -> u64 {
        self.kinds.iter().map(|k| k.completed).sum()
    }

    /// Sum of `errors` over all request types.
    pub fn total_errors(&self) -> u64 {
        self.kinds.iter().map(|k| k.errors).sum()
    }

    /// Sum of content `frames` over all request types.
    pub fn total_frames(&self) -> u64 {
        self.kinds.iter().map(|k| k.frames).sum()
    }

    /// Merged latency histogram over all request types.
    pub fn total_latency(&self) -> HistogramSnapshot {
        let mut all = HistogramSnapshot::default();
        for k in &self.kinds {
            all.merge(&k.latency_ns);
        }
        all
    }

    /// The window between `earlier` and this snapshot: counters subtract,
    /// gauges (`in_flight`) keep their current value. `uptime_ns` becomes
    /// the window length, so completed-per-second falls out directly.
    pub fn delta_since(&self, earlier: &ServiceSnapshot) -> ServiceSnapshot {
        ServiceSnapshot {
            uptime_ns: self.uptime_ns.saturating_sub(earlier.uptime_ns),
            connections_opened: self
                .connections_opened
                .saturating_sub(earlier.connections_opened),
            connections_closed: self
                .connections_closed
                .saturating_sub(earlier.connections_closed),
            in_flight: self.in_flight,
            panics_contained: self
                .panics_contained
                .saturating_sub(earlier.panics_contained),
            requests_per_conn: self
                .requests_per_conn
                .delta_since(&earlier.requests_per_conn),
            kinds: [0, 1, 2, 3, 4, 5, 6].map(|i| {
                let (now, old) = (&self.kinds[i], &earlier.kinds[i]);
                KindSnapshot {
                    kind: now.kind,
                    started: now.started.saturating_sub(old.started),
                    completed: now.completed.saturating_sub(old.completed),
                    errors: now.errors.saturating_sub(old.errors),
                    frames: now.frames.saturating_sub(old.frames),
                    latency_ns: now.latency_ns.delta_since(&old.latency_ns),
                }
            }),
        }
    }

    /// Completed requests per second over the snapshot's uptime (for a
    /// windowed snapshot, over the window).
    pub fn completed_per_sec(&self) -> f64 {
        if self.uptime_ns == 0 {
            0.0
        } else {
            self.total_completed() as f64 / (self.uptime_ns as f64 / 1e9)
        }
    }

    /// Renders the snapshot as the one-line versioned JSON document the
    /// `STATS` wire command returns. `pool` carries the serving pool's
    /// gauges (sampled lock-free by the caller).
    pub fn to_stats_json(&self, pool: &PoolGauges) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str(&format!(
            "{{\"stats_version\": {STATS_SCHEMA_VERSION}, \"uptime_ns\": {}, ",
            self.uptime_ns
        ));
        s.push_str(&format!(
            "\"connections\": {{\"opened\": {}, \"closed\": {}, \"active\": {}}}, ",
            self.connections_opened,
            self.connections_closed,
            self.connections_opened
                .saturating_sub(self.connections_closed),
        ));
        s.push_str(&format!("\"in_flight\": {}, ", self.in_flight));
        s.push_str(&format!(
            "\"pool\": {{\"workers\": {}, \"queue_depth\": {}, \"active\": {}}}, ",
            pool.workers, pool.queue_depth, pool.active,
        ));
        s.push_str(&format!(
            "\"panics_contained\": {}, ",
            self.panics_contained
        ));
        s.push_str("\"requests\": {");
        for (i, k) in self.kinds.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "\"{}\": {{\"started\": {}, \"completed\": {}, \"errors\": {}, \
                 \"frames\": {}, \"latency_ns\": {}}}",
                k.kind.name(),
                k.started,
                k.completed,
                k.errors,
                k.frames,
                latency_json(&k.latency_ns),
            ));
        }
        s.push_str("}, ");
        s.push_str(&format!(
            "\"requests_per_conn\": {}}}",
            latency_json(&self.requests_per_conn)
        ));
        s
    }
}

/// Lock-free gauges of the serving worker pool, passed into
/// [`ServiceSnapshot::to_stats_json`] by the server (the registry itself
/// never touches the pool).
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolGauges {
    /// Pool size (worker threads).
    pub workers: u64,
    /// Jobs queued and not yet picked up.
    pub queue_depth: u64,
    /// Workers currently executing a job.
    pub active: u64,
}

/// Renders a histogram snapshot as the summary JSON object used throughout
/// the `STATS` document (`_ns`-suffixed fields, one bucket layout).
fn latency_json(h: &HistogramSnapshot) -> String {
    let d = DurationSummary::from_snapshot(h);
    format!(
        "{{\"count\": {}, \"sum_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \
         \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}}}",
        d.count, d.sum_ns, d.p50_ns, d.p90_ns, d.p99_ns, d.p999_ns, h.max,
    )
}

/// Turns cumulative [`ServiceMetrics`] counters into time-windowed views:
/// each [`ServiceWindow::tick`] returns the delta since the previous tick.
pub struct ServiceWindow {
    last: ServiceSnapshot,
}

impl ServiceWindow {
    /// Opens a window starting at the registry's current state.
    pub fn new(metrics: &ServiceMetrics) -> Self {
        ServiceWindow {
            last: metrics.snapshot(),
        }
    }

    /// Closes the current window and opens the next, returning the closed
    /// window's delta snapshot.
    pub fn tick(&mut self, metrics: &ServiceMetrics) -> ServiceSnapshot {
        let now = metrics.snapshot();
        let delta = now.delta_since(&self.last);
        self.last = now;
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_kind_parsing() {
        assert_eq!(
            RequestKind::from_request("BACKTRACE 3 a,b"),
            RequestKind::Backtrace
        );
        assert_eq!(RequestKind::from_request("STATS"), RequestKind::Stats);
        assert_eq!(RequestKind::from_request("WHYNOT a=1"), RequestKind::WhyNot);
        assert_eq!(RequestKind::from_request("PANIC"), RequestKind::Other);
        assert_eq!(RequestKind::from_request(""), RequestKind::Other);
        for kind in RequestKind::ALL {
            assert_eq!(RequestKind::ALL[kind.idx()], kind);
        }
    }

    #[test]
    fn begin_finish_and_snapshot() {
        let m = ServiceMetrics::new();
        m.connection_opened();
        m.begin(RequestKind::Backtrace);
        m.begin(RequestKind::Heatmap);
        assert_eq!(m.in_flight.load(Relaxed), 2);
        m.finish(RequestKind::Backtrace, false, 5, Some(1_000));
        m.finish(RequestKind::Heatmap, true, 1, Some(9_000));
        m.connection_closed(2);
        let s = m.snapshot();
        assert_eq!(s.in_flight, 0);
        assert_eq!(s.total_started(), 2);
        assert_eq!(s.total_completed(), 2);
        assert_eq!(s.total_errors(), 1);
        assert_eq!(s.total_frames(), 6);
        assert_eq!(s.kinds[RequestKind::Backtrace.idx()].frames, 5);
        assert_eq!(s.kinds[RequestKind::Heatmap.idx()].errors, 1);
        assert_eq!(s.total_latency().count, 2);
        assert_eq!(s.requests_per_conn.count, 1);
        assert_eq!(s.connections_opened, 1);
        assert_eq!(s.connections_closed, 1);
    }

    #[test]
    fn windows_are_deltas() {
        let m = ServiceMetrics::new();
        let mut w = ServiceWindow::new(&m);
        m.begin(RequestKind::Audit);
        m.finish(RequestKind::Audit, false, 3, Some(500));
        let d1 = w.tick(&m);
        assert_eq!(d1.total_completed(), 1);
        assert_eq!(d1.total_frames(), 3);
        let d2 = w.tick(&m);
        assert_eq!(d2.total_completed(), 0);
        assert_eq!(d2.kinds[RequestKind::Audit.idx()].latency_ns.count, 0);
    }

    #[test]
    fn stats_json_shape() {
        let m = ServiceMetrics::new();
        m.begin(RequestKind::Pattern);
        m.finish(RequestKind::Pattern, false, 2, Some(4_321));
        let json = m.snapshot().to_stats_json(&PoolGauges {
            workers: 4,
            queue_depth: 0,
            active: 1,
        });
        assert!(json.starts_with(&format!("{{\"stats_version\": {STATS_SCHEMA_VERSION}")));
        assert!(!json.contains('\n'), "STATS JSON must be one line");
        for key in [
            "\"uptime_ns\"",
            "\"connections\"",
            "\"in_flight\"",
            "\"pool\"",
            "\"panics_contained\"",
            "\"requests\"",
            "\"backtrace\"",
            "\"pattern\"",
            "\"whynot\"",
            "\"stats\"",
            "\"p999_ns\"",
            "\"requests_per_conn\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"workers\": 4"));
    }
}
