//! # pebble-obs — runtime telemetry for the Pebble engine
//!
//! A std-only instrumentation layer: lock-free per-worker metric shards,
//! deterministic tracing spans, a leveled diagnostics facade, and the
//! self-describing [`RunReport`].
//!
//! Everything is compiled in but gated behind [`ObsConfig`]
//! (`PEBBLE_METRICS`, `PEBBLE_TRACE`): the disabled path is a branch on an
//! already-resolved `bool` (backed by a relaxed atomic env cache) — no
//! allocation, no locks, no timestamps on any per-morsel path. A fully
//! disabled run shares the process-wide [`RunObs::disabled`] singleton, so
//! even per-run setup allocates nothing.

#![warn(missing_docs)]

pub mod config;
pub mod diag;
pub mod metrics;
pub mod report;
pub mod service;
pub mod span;

pub use config::{force_metrics, metrics_enabled, ObsConfig};
pub use metrics::{
    bucket_index, bucket_lower, bucket_upper, HistogramSnapshot, LogHistogram, Shard, ShardSet,
    ShardTotals, HIST_BUCKETS, HIST_SUB, HIST_SUB_BITS,
};
pub use report::{
    json_escape, BackendStats, ColumnarStats, DurationSummary, MorselStats, OpReport, PoolStats,
    ProvenanceStats, RunReport, ServeStats, SpillStats, REPORT_SCHEMA_VERSION,
};
pub use service::{
    KindSnapshot, PoolGauges, RequestKind, RequestStats, ServiceMetrics, ServiceSnapshot,
    ServiceWindow, REQUEST_KINDS, STATS_SCHEMA_VERSION,
};
pub use span::{SpanEvent, SpanKind, TraceCollector};

use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Per-run observability runtime handed to the executor.
///
/// Holds the metric shards and span buffers for one run. Workers interact
/// with it only through [`RunObs::active`]-guarded paths; when built from a
/// disabled [`ObsConfig`] every recording method is a single branch.
pub struct RunObs {
    metrics: bool,
    tracing: bool,
    start: Instant,
    shards: ShardSet,
    trace: Option<TraceCollector>,
}

impl RunObs {
    /// Builds a runtime for `cfg` sized for `threads` workers (+1 shard for
    /// the scheduler thread). A disabled config returns the shared inert
    /// singleton without allocating.
    pub fn new(cfg: &ObsConfig, threads: usize) -> Arc<RunObs> {
        if !cfg.enabled() {
            return RunObs::disabled();
        }
        Arc::new(RunObs {
            metrics: cfg.metrics,
            tracing: cfg.trace_path.is_some(),
            start: Instant::now(),
            shards: ShardSet::new(threads + 1),
            trace: cfg
                .trace_path
                .as_ref()
                .map(|_| TraceCollector::new(threads + 1)),
        })
    }

    /// The process-wide inert runtime used by disabled runs.
    pub fn disabled() -> Arc<RunObs> {
        static DISABLED: OnceLock<Arc<RunObs>> = OnceLock::new();
        DISABLED
            .get_or_init(|| {
                Arc::new(RunObs {
                    metrics: false,
                    tracing: false,
                    start: Instant::now(),
                    shards: ShardSet::new(1),
                    trace: None,
                })
            })
            .clone()
    }

    /// True when any instrumentation (metrics or tracing) is on — the single
    /// branch the hot path takes before touching anything else here.
    pub fn active(&self) -> bool {
        self.metrics || self.tracing
    }

    /// True when metric shards are being populated.
    pub fn metrics(&self) -> bool {
        self.metrics
    }

    /// True when spans are being recorded.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Nanoseconds since the runtime was created (the run clock).
    pub fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Records one executed morsel: shard counters + duration histogram when
    /// metrics are on, a morsel span when tracing is on. Called from worker
    /// threads only on active runs.
    #[allow(clippy::too_many_arguments)]
    pub fn record_morsel(
        &self,
        name: &'static str,
        op: u32,
        phase: u8,
        task: u32,
        rows: u64,
        start_ns: u64,
        dur_ns: u64,
    ) {
        if self.metrics {
            use std::sync::atomic::Ordering::Relaxed;
            let shard = self.shards.shard();
            shard.morsels.fetch_add(1, Relaxed);
            shard.rows.fetch_add(rows, Relaxed);
            shard.busy_ns.fetch_add(dur_ns, Relaxed);
            shard.morsel_ns.record(dur_ns);
        }
        if self.tracing {
            self.record_span(SpanEvent {
                kind: SpanKind::Morsel,
                name,
                op,
                phase,
                task,
                worker: 0,
                start_ns,
                dur_ns,
                rows,
            });
        }
    }

    /// Appends a span event (no-op unless tracing).
    pub fn record_span(&self, event: SpanEvent) {
        if let Some(trace) = &self.trace {
            trace.record(event);
        }
    }

    /// Aggregated shard totals.
    pub fn totals(&self) -> ShardTotals {
        self.shards.totals()
    }

    /// Summary of the merged morsel-duration histogram (metrics runs).
    pub fn duration_summary(&self) -> Option<DurationSummary> {
        if !self.metrics {
            return None;
        }
        Some(DurationSummary::from_snapshot(&self.totals().morsel_ns))
    }

    /// Drains and deterministically merges all recorded spans.
    pub fn drain_spans(&self) -> Vec<SpanEvent> {
        match &self.trace {
            Some(trace) => trace.drain_sorted(),
            None => Vec::new(),
        }
    }
}

/// Process-global metric registry for phases that run outside an engine run
/// (backtrace index builds/probes issued by user code).
pub struct GlobalMetrics {
    /// Backtrace index build times, ns.
    pub backtrace_build_ns: LogHistogram,
    /// Backtrace probe (query) times, ns.
    pub backtrace_probe_ns: LogHistogram,
    /// End-to-end query-service request times, ns (recorded by
    /// `pebble-serve` per answered query).
    pub serve_query_ns: LogHistogram,
}

/// The process-global metric registry (gated by [`metrics_enabled`] at the
/// recording sites).
pub fn global() -> &'static GlobalMetrics {
    static GLOBAL: GlobalMetrics = GlobalMetrics {
        backtrace_build_ns: LogHistogram::new(),
        backtrace_probe_ns: LogHistogram::new(),
        serve_query_ns: LogHistogram::new(),
    };
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_runtime_is_shared_and_inert() {
        let a = RunObs::new(&ObsConfig::disabled(), 8);
        let b = RunObs::disabled();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!a.active() && !a.metrics() && !a.tracing());
        assert!(a.duration_summary().is_none());
        assert!(a.drain_spans().is_empty());
    }

    #[test]
    fn metrics_runtime_records() {
        let obs = RunObs::new(&ObsConfig::metrics(), 2);
        assert!(obs.active() && obs.metrics() && !obs.tracing());
        obs.record_morsel("filter", 1, 0, 0, 100, 0, 2_000);
        obs.record_morsel("filter", 1, 0, 1, 50, 0, 4_000);
        let t = obs.totals();
        assert_eq!(t.morsels, 2);
        assert_eq!(t.rows, 150);
        assert_eq!(t.busy_ns, 6_000);
        let d = obs.duration_summary().unwrap();
        assert_eq!(d.count, 2);
        assert_eq!(d.sum_ns, 6_000);
        assert!(obs.drain_spans().is_empty()); // tracing off
    }

    #[test]
    fn tracing_runtime_collects_spans() {
        let cfg = ObsConfig {
            metrics: false,
            trace_path: Some("unused".into()),
        };
        let obs = RunObs::new(&cfg, 1);
        assert!(obs.tracing() && !obs.metrics());
        obs.record_morsel("map", 0, 0, 3, 10, 5, 7);
        let spans = obs.drain_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].task, 3);
        assert_eq!(spans[0].rows, 10);
        // Metrics shards untouched on a tracing-only run.
        assert_eq!(obs.totals().morsels, 0);
    }
}
