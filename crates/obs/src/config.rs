//! Observability configuration (`PEBBLE_METRICS`, `PEBBLE_TRACE`).

use std::sync::atomic::{AtomicU8, Ordering::Relaxed};

use crate::diag;

/// Per-run observability configuration.
///
/// The default, [`ObsConfig::disabled`], turns the whole instrumentation
/// layer into a branch on an already-resolved `bool` — no allocation, no
/// locks on any per-morsel path (verified by the `obs_overhead` guard bench).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObsConfig {
    /// Collect per-operator / per-morsel metrics into the run report.
    pub metrics: bool,
    /// Export tracing spans to this path at the end of the run. Paths ending
    /// in `.chrome.json` get a chrome://tracing-compatible array (file is
    /// replaced); any other path gets NDJSON, appended per run.
    pub trace_path: Option<String>,
}

impl ObsConfig {
    /// Everything off: the zero-overhead default.
    pub fn disabled() -> Self {
        ObsConfig::default()
    }

    /// Metrics on, no trace export. Convenience for tests and benches.
    pub fn metrics() -> Self {
        ObsConfig {
            metrics: true,
            trace_path: None,
        }
    }

    /// True when any instrumentation is requested.
    pub fn enabled(&self) -> bool {
        self.metrics || self.trace_path.is_some()
    }

    /// Reads `PEBBLE_METRICS` (cached) and `PEBBLE_TRACE` (per call).
    pub fn from_env() -> Self {
        let trace_path = match std::env::var("PEBBLE_TRACE") {
            Ok(p) if !p.trim().is_empty() => Some(p),
            _ => None,
        };
        ObsConfig {
            metrics: metrics_enabled(),
            trace_path,
        }
    }
}

/// `PEBBLE_METRICS` cache: 0 = unresolved, 1 = off, 2 = on.
static METRICS: AtomicU8 = AtomicU8::new(0);

/// Whether `PEBBLE_METRICS` asked for metrics. Parsed once, then a single
/// relaxed atomic load — this is the gate the disabled hot path branches on.
pub fn metrics_enabled() -> bool {
    match METRICS.load(Relaxed) {
        0 => {
            let on = match std::env::var("PEBBLE_METRICS") {
                Ok(raw) => match parse_bool(&raw) {
                    Some(b) => b,
                    None => {
                        if !raw.trim().is_empty() {
                            diag::warn_once(
                                "PEBBLE_METRICS",
                                &format!("ignoring invalid PEBBLE_METRICS={raw:?} (want 0/1)"),
                            );
                        }
                        false
                    }
                },
                Err(_) => false,
            };
            METRICS.store(if on { 2 } else { 1 }, Relaxed);
            on
        }
        1 => false,
        _ => true,
    }
}

/// Overrides the cached `PEBBLE_METRICS` decision (tests / benches that flip
/// metrics within one process).
pub fn force_metrics(on: bool) {
    METRICS.store(if on { 2 } else { 1 }, Relaxed);
}

fn parse_bool(raw: &str) -> Option<bool> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Some(true),
        "" | "0" | "false" | "off" | "no" => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_parsing() {
        assert_eq!(parse_bool("1"), Some(true));
        assert_eq!(parse_bool(" TRUE "), Some(true));
        assert_eq!(parse_bool("0"), Some(false));
        assert_eq!(parse_bool(""), Some(false));
        assert_eq!(parse_bool("maybe"), None);
    }

    #[test]
    fn disabled_config_is_inert() {
        let cfg = ObsConfig::disabled();
        assert!(!cfg.enabled());
        assert!(ObsConfig::metrics().enabled());
        assert!(ObsConfig {
            metrics: false,
            trace_path: Some("t".into())
        }
        .enabled());
    }
}
