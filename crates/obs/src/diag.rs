//! Leveled diagnostics facade.
//!
//! Replaces the once-per-process `eprintln!` warnings that used to be
//! scattered across the engine. Messages print as `pebble: {message}` on
//! stderr — byte-identical to the historical format at the default level —
//! and are filtered by `PEBBLE_LOG=warn|info|debug` (default `warn`).
//!
//! The level is parsed once and cached in a relaxed atomic, so the disabled
//! branches of [`info`]/[`debug`] are a single load + compare; the message
//! closures are only invoked when the level admits them.
//!
//! Every record is emitted as ONE `write_all` of a fully formatted line
//! (prefix + message + newline), so concurrent connections in a serving
//! process never interleave fragments of two records — multi-tenant
//! `PEBBLE_LOG` output stays line-parseable.

use std::collections::BTreeSet;
use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering::Relaxed};
use std::sync::Mutex;

/// Diagnostic verbosity, least to most verbose.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unexpected-but-recoverable conditions. Always printed.
    Warn = 1,
    /// Coarse progress / configuration notes.
    Info = 2,
    /// Per-run details.
    Debug = 3,
}

static LEVEL: AtomicU8 = AtomicU8::new(0);

fn parse_level(raw: &str) -> Option<Level> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "warn" | "warning" => Some(Level::Warn),
        "info" => Some(Level::Info),
        "debug" | "trace" => Some(Level::Debug),
        _ => None,
    }
}

/// The active diagnostic level (`PEBBLE_LOG`, cached after the first call).
pub fn level() -> Level {
    match LEVEL.load(Relaxed) {
        0 => {
            let lvl = match std::env::var("PEBBLE_LOG") {
                Ok(raw) if !raw.trim().is_empty() => match parse_level(&raw) {
                    Some(l) => l,
                    None => {
                        LEVEL.store(Level::Warn as u8, Relaxed);
                        warn_once(
                            "PEBBLE_LOG",
                            &format!("ignoring invalid PEBBLE_LOG={raw:?} (want warn|info|debug)"),
                        );
                        return Level::Warn;
                    }
                },
                _ => Level::Warn,
            };
            LEVEL.store(lvl as u8, Relaxed);
            lvl
        }
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Overrides the cached level (tests / embedders).
pub fn set_level(lvl: Level) {
    LEVEL.store(lvl as u8, Relaxed);
}

/// Emits one diagnostic record line-atomically: the whole record (prefix,
/// message, trailing newline) is formatted first and handed to stderr as a
/// single `write_all`, so records from concurrent threads never interleave
/// mid-line. A failed write is silently dropped (diagnostics must never
/// take down the engine).
fn emit(message: &str) {
    let line = format!("pebble: {message}\n");
    let stderr = std::io::stderr();
    let mut handle = stderr.lock();
    let _ = handle.write_all(line.as_bytes());
}

/// Prints a warning as `pebble: {message}`. Warnings are always enabled.
pub fn warn(message: &str) {
    emit(message);
}

/// Prints an informational message when `PEBBLE_LOG` is `info` or `debug`.
/// The closure only runs when the message will be printed.
pub fn info(message: impl FnOnce() -> String) {
    if level() >= Level::Info {
        emit(&message());
    }
}

/// Prints a debug message when `PEBBLE_LOG=debug`. The closure only runs
/// when the message will be printed.
pub fn debug(message: impl FnOnce() -> String) {
    if level() >= Level::Debug {
        emit(&message());
    }
}

static WARNED: Mutex<BTreeSet<String>> = Mutex::new(BTreeSet::new());

/// Prints a warning at most once per process for a given `key`.
///
/// Used for env-knob clamping and trace-export failures, where repeating the
/// same message every run would be noise.
pub fn warn_once(key: &str, message: &str) {
    let mut warned = WARNED.lock().unwrap_or_else(|p| p.into_inner());
    if warned.insert(key.to_string()) {
        warn(message);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_levels() {
        assert_eq!(parse_level("warn"), Some(Level::Warn));
        assert_eq!(parse_level(" INFO "), Some(Level::Info));
        assert_eq!(parse_level("debug"), Some(Level::Debug));
        assert_eq!(parse_level("bogus"), None);
        assert!(Level::Debug > Level::Info && Level::Info > Level::Warn);
    }
}
