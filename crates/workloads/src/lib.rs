//! # pebble-workloads — evaluation datasets and scenarios
//!
//! Synthetic substitutes for the paper's 500 GB Twitter and DBLP inputs
//! (see DESIGN.md for the substitution rationale), the running example of
//! Sec. 2, the ten evaluation scenarios of Tab. 7, and the multi-tenant
//! [`mod@loadgen`] harness (open- and closed-loop generators over an
//! arbitrary query transport).

#![warn(missing_docs)]

pub mod dblp;
pub mod fuzz;
pub mod loadgen;
pub mod running_example;
pub mod scenarios;
pub mod twitter;

pub use dblp::{DblpConfig, DblpData};
pub use fuzz::{fuzz_dblp_context, fuzz_twitter_context};
pub use loadgen::{
    rates_from_env, run_closed_loop, run_open_loop, ClosedLoopConfig, LoadReport, OpenLoopConfig,
};
pub use scenarios::{dblp_context, dblp_scenarios, twitter_context, twitter_scenarios, Scenario};
pub use twitter::TwitterConfig;
