//! # pebble-workloads — evaluation datasets and scenarios
//!
//! Synthetic substitutes for the paper's 500 GB Twitter and DBLP inputs
//! (see DESIGN.md for the substitution rationale), the running example of
//! Sec. 2, and the ten evaluation scenarios of Tab. 7.

#![warn(missing_docs)]

pub mod dblp;
pub mod fuzz;
pub mod running_example;
pub mod scenarios;
pub mod twitter;

pub use dblp::{DblpConfig, DblpData};
pub use fuzz::{fuzz_dblp_context, fuzz_twitter_context};
pub use scenarios::{dblp_context, dblp_scenarios, twitter_context, twitter_scenarios, Scenario};
pub use twitter::TwitterConfig;
