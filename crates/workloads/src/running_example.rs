//! The paper's running example (Sec. 2): the five input tweets of Tab. 1,
//! the processing pipeline of Fig. 1, and the provenance question of
//! Fig. 4. Used by the quickstart example and the end-to-end golden tests.

use pebble_core::{PatternNode, TreePattern};
use pebble_dataflow::{
    AggFunc, AggSpec, Context, Expr, GroupKey, NamedExpr, Program, ProgramBuilder, SelectExpr,
};
use pebble_nested::{DataItem, Value};

fn user(id: &str, name: &str) -> Value {
    Value::Item(DataItem::from_fields([
        ("id_str", Value::str(id)),
        ("name", Value::str(name)),
    ]))
}

fn tweet(text: &str, u: Value, mentions: Vec<Value>, retweet_cnt: i64) -> DataItem {
    DataItem::from_fields([
        ("text", Value::str(text)),
        ("user", u),
        ("user_mentions", Value::Bag(mentions)),
        ("retweet_cnt", Value::Int(retweet_cnt)),
    ])
}

/// The five input tweets of Tab. 1, in order.
pub fn input() -> Vec<DataItem> {
    vec![
        tweet(
            "Hello @ls @jm @ls",
            user("lp", "Lisa Paul"),
            vec![
                user("ls", "Lauren Smith"),
                user("jm", "John Miller"),
                user("ls", "Lauren Smith"),
            ],
            0,
        ),
        tweet("Hello World", user("lp", "Lisa Paul"), vec![], 0),
        tweet("Hello World", user("lp", "Lisa Paul"), vec![], 0),
        tweet(
            "This is me @jm",
            user("jm", "John Miller"),
            vec![user("jm", "John Miller")],
            0,
        ),
        tweet(
            "Hello @lp",
            user("jm", "John Miller"),
            vec![user("lp", "Lisa Paul")],
            1,
        ),
    ]
}

/// A context with the Tab. 1 tweets registered as `tweets.json`.
pub fn context() -> Context {
    let mut ctx = Context::new();
    ctx.register("tweets.json", input());
    ctx
}

/// The processing pipeline of Fig. 1. Operator ids are the paper's labels
/// minus one (the builder counts from 0):
///
/// | paper | here | operator |
/// |---|---|---|
/// | 1 | 0 | read tweets.json |
/// | 2 | 1 | filter retweet_cnt == 0 |
/// | 3 | 2 | select text, user.id_str, user.name |
/// | 4 | 3 | read tweets.json |
/// | 5 | 4 | flatten user_mentions → m_user |
/// | 6 | 5 | select text, m_user.id_str, m_user.name |
/// | 7 | 6 | union |
/// | 8 | 7 | select text → tweet, ⟨id_str, name⟩ → user |
/// | 9 | 8 | aggregate groupBy(user), collectList(tweet) → tweets |
pub fn program() -> Program {
    let mut b = ProgramBuilder::new();
    // Upper branch: authoring users.
    let read1 = b.read("tweets.json");
    let filtered = b.filter(read1, Expr::col("retweet_cnt").eq(Expr::lit(0i64)));
    let upper = b.select(
        filtered,
        vec![
            NamedExpr::path("text"),
            NamedExpr::path("user.id_str"),
            NamedExpr::path("user.name"),
        ],
    );
    // Lower branch: mentioned users.
    let read2 = b.read("tweets.json");
    let flat = b.flatten(read2, "user_mentions", "m_user");
    let lower = b.select(
        flat,
        vec![
            NamedExpr::path("text"),
            NamedExpr::path("m_user.id_str"),
            NamedExpr::path("m_user.name"),
        ],
    );
    let unioned = b.union(upper, lower);
    // `text → tweet` keeps the tweet as a one-attribute item so that the
    // result type matches Ex. 4.2: {{⟨user, tweets: {{⟨text⟩}}⟩}}.
    let shaped = b.select(
        unioned,
        vec![
            NamedExpr::new(
                "tweet",
                SelectExpr::strct([("text", SelectExpr::path("text"))]),
            ),
            NamedExpr::new(
                "user",
                SelectExpr::strct([
                    ("id_str", SelectExpr::path("id_str")),
                    ("name", SelectExpr::path("name")),
                ]),
            ),
        ],
    );
    let agg = b.group_aggregate(
        shaped,
        vec![GroupKey::new("user")],
        vec![AggSpec::new(AggFunc::CollectList, "tweet", "tweets")],
    );
    b.build(agg)
}

/// The provenance question of Fig. 4: user `lp` with the text
/// `Hello World` occurring exactly twice in the nested tweets.
pub fn query() -> TreePattern {
    TreePattern::root()
        .node(PatternNode::descendant("id_str").eq("lp"))
        .node(
            PatternNode::attr("tweets")
                .child(PatternNode::attr("text").eq("Hello World").occurs(2, 2)),
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dataflow::{run, ExecConfig, NoSink};
    use pebble_nested::Path;

    #[test]
    fn pipeline_reproduces_tab2() {
        let out = run(
            &program(),
            &context(),
            ExecConfig::with_partitions(2),
            &NoSink,
        )
        .unwrap();
        // Tab. 2: three users.
        assert_eq!(out.rows.len(), 3);
        let find = |id: &str| {
            out.rows
                .iter()
                .find(|r| Path::parse("user.id_str").eval(&r.item) == Some(&Value::str(id)))
                .unwrap_or_else(|| panic!("no result user {id}"))
        };
        let texts = |id: &str| -> Vec<String> {
            find(id)
                .item
                .get("tweets")
                .and_then(Value::as_collection)
                .unwrap()
                .iter()
                .map(|t| {
                    t.as_item()
                        .unwrap()
                        .get("text")
                        .unwrap()
                        .as_str()
                        .unwrap()
                        .to_string()
                })
                .collect()
        };
        // 101: Lauren Smith — mentioned twice in tweet 1.
        assert_eq!(texts("ls"), ["Hello @ls @jm @ls", "Hello @ls @jm @ls"]);
        // 102: Lisa Paul — author of tweets 1-3, mentioned in tweet 29.
        // Exact order pins the duplicate texts at positions 2 and 3, as in
        // Tab. 2 (the Fig. 4 query relies on those positions).
        assert_eq!(
            texts("lp"),
            [
                "Hello @ls @jm @ls",
                "Hello World",
                "Hello World",
                "Hello @lp"
            ]
        );
        // 103: John Miller. Nested bag order is implementation-defined
        // (our union emits the authoring branch first), so compare as a
        // multiset.
        let mut jm = texts("jm");
        jm.sort();
        assert_eq!(
            jm,
            ["Hello @ls @jm @ls", "This is me @jm", "This is me @jm"]
        );
    }

    #[test]
    fn query_matches_only_lp() {
        let out = run(
            &program(),
            &context(),
            ExecConfig::with_partitions(2),
            &NoSink,
        )
        .unwrap();
        let b = query().match_rows(&out.rows);
        assert_eq!(b.entries.len(), 1);
        let tree = &b.entries[0].1;
        assert!(tree.contains(&Path::parse("user.id_str")));
        assert!(tree.contains(&Path::parse("tweets[2].text")));
        assert!(tree.contains(&Path::parse("tweets[3].text")));
        assert!(!tree.contains(&Path::parse("tweets[1]")));
    }
}

#[cfg(test)]
mod io_tests {
    use super::*;
    use pebble_dataflow::io;

    /// The running example survives an NDJSON disk roundtrip and produces
    /// the identical Tab. 2 result from the reloaded data.
    #[test]
    fn tab1_roundtrips_through_disk() {
        let path = std::env::temp_dir().join(format!(
            "pebble-running-example-{}.ndjson",
            std::process::id()
        ));
        io::write_ndjson(&path, input()).unwrap();
        let reloaded = io::read_ndjson(&path).unwrap();
        assert_eq!(reloaded, input());

        let mut ctx = Context::new();
        ctx.register("tweets.json", reloaded);
        let from_disk = pebble_dataflow::run(
            &program(),
            &ctx,
            pebble_dataflow::ExecConfig::with_partitions(2),
            &pebble_dataflow::NoSink,
        )
        .unwrap();
        let from_memory = pebble_dataflow::run(
            &program(),
            &context(),
            pebble_dataflow::ExecConfig::with_partitions(2),
            &pebble_dataflow::NoSink,
        )
        .unwrap();
        assert!(from_disk.iter_items().eq(from_memory.iter_items()));
        let _ = std::fs::remove_file(path);
    }
}
