//! The evaluation scenarios T1–T5 (Twitter) and D1–D5 (DBLP) of Tab. 7,
//! each pairing a Spark-style program with the structural provenance query
//! that the evaluation backtraces.

use std::sync::Arc;

use pebble_core::{PatternNode, TreePattern};
use pebble_dataflow::{
    AggFunc, AggSpec, Context, Expr, GroupKey, MapUdf, NamedExpr, Program, ProgramBuilder,
    SelectExpr,
};
use pebble_nested::{DataItem, Path, Value};

use crate::dblp::{self, DblpConfig};
use crate::twitter::{self, TwitterConfig};

/// A benchmark scenario: program + structural provenance question.
pub struct Scenario {
    /// Scenario id (`T1` … `D5`).
    pub name: &'static str,
    /// Informal description (Tab. 7).
    pub description: &'static str,
    /// The data processing program.
    pub program: Program,
    /// The structural query evaluated over the program result.
    pub query: TreePattern,
}

/// Builds a context holding the Twitter source for the T-scenarios.
pub fn twitter_context(tweets: usize) -> Context {
    let mut ctx = Context::new();
    ctx.register("tweets", twitter::generate(&TwitterConfig::sized(tweets)));
    ctx
}

/// Builds a context holding the DBLP sources for the D-scenarios.
pub fn dblp_context(records: usize) -> Context {
    let mut ctx = Context::new();
    dblp::generate(&DblpConfig::sized(records)).register(&mut ctx);
    ctx
}

/// All five Twitter scenarios.
pub fn twitter_scenarios() -> Vec<Scenario> {
    vec![t1(), t2(), t3(), t4(), t5()]
}

/// All five DBLP scenarios.
pub fn dblp_scenarios() -> Vec<Scenario> {
    vec![d1(), d2(), d3(), d4(), d5()]
}

/// T1: filter tweets containing "good", flatten and group by the mentioned
/// users to collect a bag of complex tweet objects.
pub fn t1() -> Scenario {
    let mut b = ProgramBuilder::new();
    let read = b.read("tweets");
    let good = b.filter(read, Expr::col("text").contains(Expr::lit("good")));
    let flat = b.flatten(good, "entities.user_mentions", "m_user");
    let shaped = b.select(
        flat,
        vec![
            NamedExpr::new(
                "m_user",
                SelectExpr::strct([
                    ("id_str", SelectExpr::path("m_user.id_str")),
                    ("name", SelectExpr::path("m_user.name")),
                ]),
            ),
            NamedExpr::new(
                "tweet",
                SelectExpr::strct([
                    ("text", SelectExpr::path("text")),
                    ("author", SelectExpr::path("user.id_str")),
                    ("retweets", SelectExpr::path("retweet_count")),
                ]),
            ),
        ],
    );
    let agg = b.group_aggregate(
        shaped,
        vec![GroupKey::new("m_user")],
        vec![AggSpec::new(AggFunc::CollectList, "tweet", "tweets")],
    );
    Scenario {
        name: "T1",
        description: "good-tweets grouped by mentioned user with complex tweet objects",
        program: b.build(agg),
        query: TreePattern::root()
            .node(PatternNode::descendant("id_str").eq(twitter::user_id(1)))
            .node(PatternNode::attr("tweets").child(PatternNode::attr("text").contains("good"))),
    }
}

/// T2: flattens the nested lists hashtags, media, and user mentions.
pub fn t2() -> Scenario {
    let mut b = ProgramBuilder::new();
    let read = b.read("tweets");
    let f1 = b.flatten(read, "entities.hashtags", "hashtag");
    let f2 = b.flatten(f1, "entities.media", "medium");
    let f3 = b.flatten(f2, "entities.user_mentions", "m_user");
    let sel = b.select(
        f3,
        vec![
            NamedExpr::path("id_str"),
            NamedExpr::aliased("tag", "hashtag.text"),
            NamedExpr::aliased("media_id", "medium.id"),
            NamedExpr::aliased("mentioned", "m_user.id_str"),
        ],
    );
    Scenario {
        name: "T2",
        description: "flatten hashtags, media, user mentions",
        program: b.build(sel),
        query: TreePattern::root().node(PatternNode::attr("mentioned").eq(twitter::user_id(2))),
    }
}

/// T3: the running example's pipeline over the synthetic tweets.
pub fn t3() -> Scenario {
    let mut b = ProgramBuilder::new();
    let read1 = b.read("tweets");
    let filtered = b.filter(read1, Expr::col("retweet_count").eq(Expr::lit(0i64)));
    let upper = b.select(
        filtered,
        vec![
            NamedExpr::path("text"),
            NamedExpr::path("user.id_str"),
            NamedExpr::path("user.name"),
        ],
    );
    let read2 = b.read("tweets");
    let flat = b.flatten(read2, "entities.user_mentions", "m_user");
    let lower = b.select(
        flat,
        vec![
            NamedExpr::path("text"),
            NamedExpr::path("m_user.id_str"),
            NamedExpr::path("m_user.name"),
        ],
    );
    let unioned = b.union(upper, lower);
    let shaped = b.select(
        unioned,
        vec![
            NamedExpr::new(
                "tweet",
                SelectExpr::strct([("text", SelectExpr::path("text"))]),
            ),
            NamedExpr::new(
                "user",
                SelectExpr::strct([
                    ("id_str", SelectExpr::path("id_str")),
                    ("name", SelectExpr::path("name")),
                ]),
            ),
        ],
    );
    let agg = b.group_aggregate(
        shaped,
        vec![GroupKey::new("user")],
        vec![AggSpec::new(AggFunc::CollectList, "tweet", "tweets")],
    );
    Scenario {
        name: "T3",
        description: "running example: authored or mentioned tweets per user",
        program: b.build(agg),
        query: TreePattern::root()
            .node(PatternNode::descendant("id_str").eq(twitter::user_id(3)))
            .node(
                PatternNode::attr("tweets")
                    .child(PatternNode::attr("text").contains("Hello World")),
            ),
    }
}

/// T4: associates all occurring hashtags with the authoring and mentioned
/// users.
pub fn t4() -> Scenario {
    let mut b = ProgramBuilder::new();
    // Branch A: hashtags with authoring users.
    let read1 = b.read("tweets");
    let tags_a = b.flatten(read1, "entities.hashtags", "tag");
    let authors = b.select(
        tags_a,
        vec![
            NamedExpr::aliased("hashtag", "tag.text"),
            NamedExpr::new(
                "who",
                SelectExpr::strct([
                    ("id_str", SelectExpr::path("user.id_str")),
                    ("name", SelectExpr::path("user.name")),
                ]),
            ),
        ],
    );
    // Branch B: hashtags with mentioned users.
    let read2 = b.read("tweets");
    let tags_b = b.flatten(read2, "entities.hashtags", "tag");
    let mentions = b.flatten(tags_b, "entities.user_mentions", "m_user");
    let mentioned = b.select(
        mentions,
        vec![
            NamedExpr::aliased("hashtag", "tag.text"),
            NamedExpr::new(
                "who",
                SelectExpr::strct([
                    ("id_str", SelectExpr::path("m_user.id_str")),
                    ("name", SelectExpr::path("m_user.name")),
                ]),
            ),
        ],
    );
    let unioned = b.union(authors, mentioned);
    let agg = b.group_aggregate(
        unioned,
        vec![GroupKey::new("hashtag")],
        vec![AggSpec::new(AggFunc::CollectList, "who", "users")],
    );
    Scenario {
        name: "T4",
        description: "hashtags associated with authoring and mentioned users",
        program: b.build(agg),
        query: TreePattern::root()
            .node(PatternNode::attr("hashtag").eq("tag7"))
            .node(PatternNode::attr("users").child(PatternNode::attr("id_str").contains("u"))),
    }
}

/// T5: users that tweet about BTS and are mentioned in a BTS tweet.
pub fn t5() -> Scenario {
    let mut b = ProgramBuilder::new();
    // Authors of BTS tweets.
    let read1 = b.read("tweets");
    let bts_a = b.filter(read1, Expr::col("text").contains(Expr::lit("BTS")));
    let authors = b.select(
        bts_a,
        vec![
            NamedExpr::aliased("author_id", "user.id_str"),
            NamedExpr::aliased("author_name", "user.name"),
            NamedExpr::aliased("tweeted", "text"),
        ],
    );
    // Users mentioned in BTS tweets.
    let read2 = b.read("tweets");
    let bts_m = b.filter(read2, Expr::col("text").contains(Expr::lit("BTS")));
    let flat = b.flatten(bts_m, "entities.user_mentions", "m_user");
    let mentioned = b.select(
        flat,
        vec![
            NamedExpr::aliased("mentioned_id", "m_user.id_str"),
            NamedExpr::aliased("mention_text", "text"),
        ],
    );
    let joined = b.join(
        authors,
        mentioned,
        vec![(Path::attr("author_id"), Path::attr("mentioned_id"))],
    );
    let agg = b.group_aggregate(
        joined,
        vec![GroupKey::new("author_id"), GroupKey::new("author_name")],
        vec![
            AggSpec::new(AggFunc::CollectSet, "tweeted", "bts_tweets"),
            AggSpec::new(AggFunc::Count, "", "evidence"),
        ],
    );
    Scenario {
        name: "T5",
        description: "users tweeting about BTS and mentioned in a BTS tweet",
        program: b.build(agg),
        query: TreePattern::root()
            .node(PatternNode::attr("evidence").pred(pebble_core::ValuePred::Ge(Value::Int(1)))),
    }
}

/// D1: associates inproceedings from 2015 with their proceeding(s).
pub fn d1() -> Scenario {
    let mut b = ProgramBuilder::new();
    let inproc = b.read("inproceedings");
    let y2015 = b.filter(inproc, Expr::col("year").eq(Expr::lit(2015i64)));
    let proc = b.read("proceedings");
    let joined = b.join(
        y2015,
        proc,
        vec![(Path::attr("crossref"), Path::attr("key"))],
    );
    let sel = b.select(
        joined,
        vec![
            NamedExpr::aliased("paper", "title"),
            NamedExpr::aliased("proceeding", "title_r"),
            NamedExpr::path("authors"),
            NamedExpr::path("publisher"),
        ],
    );
    Scenario {
        name: "D1",
        description: "inproceedings from 2015 joined with their proceedings",
        program: b.build(sel),
        query: TreePattern::root()
            .node(PatternNode::attr("publisher").eq("Publisher 1"))
            .node(PatternNode::descendant("name").contains("Author")),
    }
}

/// D2: unites and restructures conference proceedings and articles.
pub fn d2() -> Scenario {
    let mut b = ProgramBuilder::new();
    let proc = b.read("proceedings");
    let shaped_p = b.select(
        proc,
        vec![
            NamedExpr::path("key"),
            NamedExpr::path("title"),
            NamedExpr::path("year"),
            NamedExpr::aliased("venue", "publisher"),
        ],
    );
    let articles = b.read("articles");
    let shaped_a = b.select(
        articles,
        vec![
            NamedExpr::path("key"),
            NamedExpr::path("title"),
            NamedExpr::path("year"),
            NamedExpr::aliased("venue", "journal"),
        ],
    );
    let unioned = b.union(shaped_p, shaped_a);
    let recent = b.filter(unioned, Expr::col("year").ge(Expr::lit(2012i64)));
    Scenario {
        name: "D2",
        description: "union and restructuring of proceedings and articles",
        program: b.build(recent),
        query: TreePattern::root().node(PatternNode::attr("venue").eq("Journal 3")),
    }
}

/// D3: nested lists of aliases and works per author (flatten early, then a
/// selective join — the scenario with the paper's largest provenance).
pub fn d3() -> Scenario {
    let mut b = ProgramBuilder::new();
    let inproc = b.read("inproceedings");
    let by_author = b.flatten(inproc, "authors", "author");
    let works = b.select(
        by_author,
        vec![
            NamedExpr::aliased("name", "author.name"),
            NamedExpr::new(
                "work",
                SelectExpr::strct([("title", SelectExpr::path("title"))]),
            ),
        ],
    );
    let persons = b.read("persons");
    let aliased = b.flatten(persons, "aliases", "alias");
    let alias_rows = b.select(
        aliased,
        vec![
            NamedExpr::aliased("person_name", "name"),
            NamedExpr::path("alias"),
            NamedExpr::path("affiliation"),
        ],
    );
    let joined = b.join(
        works,
        alias_rows,
        vec![(Path::attr("name"), Path::attr("person_name"))],
    );
    let agg = b.group_aggregate(
        joined,
        vec![GroupKey::new("name")],
        vec![
            AggSpec::new(AggFunc::CollectSet, "alias", "aliases"),
            AggSpec::new(AggFunc::CollectList, "work", "works"),
            AggSpec::new(AggFunc::Count, "", "n_works"),
        ],
    );
    Scenario {
        name: "D3",
        description: "aliases, works and counts nested per author",
        program: b.build(agg),
        query: TreePattern::root()
            .node(PatternNode::attr("name").contains("Author"))
            .node(PatternNode::attr("works").child(PatternNode::attr("title").contains("Paper"))),
    }
}

/// D4: nested list of all associated inproceedings for each proceeding.
pub fn d4() -> Scenario {
    let mut b = ProgramBuilder::new();
    let inproc = b.read("inproceedings");
    let proc = b.read("proceedings");
    let joined = b.join(
        inproc,
        proc,
        vec![(Path::attr("crossref"), Path::attr("key"))],
    );
    let shaped = b.select(
        joined,
        vec![
            NamedExpr::aliased("proceeding", "title_r"),
            NamedExpr::aliased("proc_key", "key_r"),
            NamedExpr::new(
                "paper",
                SelectExpr::strct([
                    ("title", SelectExpr::path("title")),
                    ("authors", SelectExpr::path("authors")),
                ]),
            ),
        ],
    );
    let agg = b.group_aggregate(
        shaped,
        vec![GroupKey::new("proc_key"), GroupKey::new("proceeding")],
        vec![AggSpec::new(AggFunc::CollectList, "paper", "papers")],
    );
    Scenario {
        name: "D4",
        description: "inproceedings nested per proceeding",
        program: b.build(agg),
        query: TreePattern::root()
            .node(PatternNode::attr("proceeding").contains("Conf 1"))
            .node(PatternNode::attr("papers").child(PatternNode::attr("title").contains("Paper"))),
    }
}

/// D5: D4 extended with a UDF in `map` that returns the number of authors
/// per proceeding.
pub fn d5() -> Scenario {
    let mut b = ProgramBuilder::new();
    let inproc = b.read("inproceedings");
    let proc = b.read("proceedings");
    let joined = b.join(
        inproc,
        proc,
        vec![(Path::attr("crossref"), Path::attr("key"))],
    );
    let shaped = b.select(
        joined,
        vec![
            NamedExpr::aliased("proceeding", "title_r"),
            NamedExpr::aliased("proc_key", "key_r"),
            NamedExpr::new(
                "paper",
                SelectExpr::strct([
                    ("title", SelectExpr::path("title")),
                    ("authors", SelectExpr::path("authors")),
                ]),
            ),
        ],
    );
    let agg = b.group_aggregate(
        shaped,
        vec![GroupKey::new("proc_key"), GroupKey::new("proceeding")],
        vec![AggSpec::new(AggFunc::CollectList, "paper", "papers")],
    );
    let mapped = b.map(
        agg,
        MapUdf {
            name: "author_count".into(),
            f: Arc::new(|item: &DataItem| {
                let n: usize = item
                    .get("papers")
                    .and_then(Value::as_collection)
                    .map(|papers| {
                        papers
                            .iter()
                            .filter_map(|p| {
                                p.as_item()
                                    .and_then(|d| d.get("authors"))
                                    .and_then(Value::as_collection)
                                    .map(<[Value]>::len)
                            })
                            .sum()
                    })
                    .unwrap_or(0);
                let mut out = item.clone();
                out.push("n_authors", Value::Int(n as i64));
                out
            }),
            output_schema: None,
        },
    );
    Scenario {
        name: "D5",
        description: "D4 plus a map UDF computing authors per proceeding",
        program: b.build(mapped),
        query: TreePattern::root()
            .node(PatternNode::attr("n_authors").pred(pebble_core::ValuePred::Ge(Value::Int(1)))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_core::{backtrace, run_captured};
    use pebble_dataflow::ExecConfig;

    fn cfg() -> ExecConfig {
        ExecConfig::with_partitions(4)
    }

    #[test]
    fn all_twitter_scenarios_run_and_trace() {
        let ctx = twitter_context(400);
        for s in twitter_scenarios() {
            let run = run_captured(&s.program, &ctx, cfg())
                .unwrap_or_else(|e| panic!("{} failed: {e}", s.name));
            assert!(
                !run.output.rows.is_empty(),
                "{} produced no results",
                s.name
            );
            let b = s.query.match_rows(&run.output.rows);
            assert!(!b.entries.is_empty(), "{} query matched nothing", s.name);
            let sources = backtrace(&run, b).unwrap();
            assert!(
                sources.iter().any(|sp| !sp.entries.is_empty()),
                "{} backtraced nothing",
                s.name
            );
        }
    }

    #[test]
    fn all_dblp_scenarios_run_and_trace() {
        let ctx = dblp_context(800);
        for s in dblp_scenarios() {
            let run = run_captured(&s.program, &ctx, cfg())
                .unwrap_or_else(|e| panic!("{} failed: {e}", s.name));
            assert!(
                !run.output.rows.is_empty(),
                "{} produced no results",
                s.name
            );
            let b = s.query.match_rows(&run.output.rows);
            assert!(!b.entries.is_empty(), "{} query matched nothing", s.name);
            let sources = backtrace(&run, b).unwrap();
            assert!(
                sources.iter().any(|sp| !sp.entries.is_empty()),
                "{} backtraced nothing",
                s.name
            );
        }
    }

    #[test]
    fn every_operator_kind_covered() {
        // Tab. 7 requirement: each supported operator occurs at least once
        // across the scenarios.
        use pebble_dataflow::OpKind;
        let mut seen = std::collections::BTreeSet::new();
        for s in twitter_scenarios().iter().chain(dblp_scenarios().iter()) {
            for op in s.program.operators() {
                seen.insert(op.kind.type_name());
            }
        }
        for ty in [
            "read",
            "filter",
            "select",
            "map",
            "join",
            "union",
            "flatten",
            "aggregation",
        ] {
            assert!(seen.contains(ty), "operator {ty} not covered");
        }
        let _ = OpKind::Union; // silence unused import lint paths
    }
}
