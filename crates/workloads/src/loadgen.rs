//! Multi-tenant load generation against a query service.
//!
//! Two generator disciplines, both driving an arbitrary transport (any
//! `Fn(&str) -> io::Result<Vec<String>>` — typically `pebble_serve::query`
//! against a live server, which keeps this crate free of a network
//! dependency):
//!
//! * **Closed loop** ([`run_closed_loop`]) — `tenants` threads, each
//!   issuing its next request only after the previous one completed, with
//!   an optional think time in between. Throughput self-limits to the
//!   service's capacity; latency measures service time. This models "N
//!   interactive analysts".
//! * **Open loop** ([`run_open_loop`]) — requests arrive on a fixed
//!   schedule (`rate` per second, arrival `i` at `i/rate`) regardless of
//!   completions, issued by a pool of sender threads. Latency is measured
//!   from the *scheduled arrival*, so queueing delay is included — as the
//!   offered rate passes the saturation knee, p99 explodes while achieved
//!   throughput flattens. This is the discipline that finds the knee;
//!   closed-loop generators famously hide it (coordinated omission).
//!
//! Both record client-side latencies into the engine's lock-free
//! [`LogHistogram`] (the shared `_ns` bucket layout) and tally per
//! request-kind completions/errors so results reconcile exactly against a
//! server's `STATS` snapshot.
//!
//! Request mixes are plain request-line vectors; each tenant walks the
//! mix from its own deterministic offset, so the multiset of issued
//! requests is independent of timing and thread interleaving.
//!
//! Env knobs (read by [`ClosedLoopConfig::from_env`] /
//! [`rates_from_env`], used by the `loadbench`/`load_smoke` bins):
//! `PEBBLE_LOAD_TENANTS`, `PEBBLE_LOAD_REQUESTS` (per tenant),
//! `PEBBLE_LOAD_THINK_MS`, `PEBBLE_LOAD_RATES` (comma-separated offered
//! rates per second).

use std::io;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::time::{Duration, Instant};

use pebble_obs::{DurationSummary, HistogramSnapshot, LogHistogram, RequestKind, REQUEST_KINDS};

/// Closed-loop generator parameters.
#[derive(Clone, Debug)]
pub struct ClosedLoopConfig {
    /// Concurrent tenant threads.
    pub tenants: usize,
    /// Requests each tenant issues.
    pub requests_per_tenant: usize,
    /// Pause between a tenant's completion and its next request.
    pub think: Duration,
}

impl Default for ClosedLoopConfig {
    fn default() -> Self {
        ClosedLoopConfig {
            tenants: 8,
            requests_per_tenant: 32,
            think: Duration::from_millis(1),
        }
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Ok(raw) if !raw.trim().is_empty() => match raw.trim().parse::<usize>() {
            Ok(v) if v > 0 => v,
            _ => {
                pebble_obs::diag::warn_once(
                    name,
                    &format!("ignoring invalid {name}={raw:?}: expected a positive integer"),
                );
                default
            }
        },
        _ => default,
    }
}

impl ClosedLoopConfig {
    /// Reads `PEBBLE_LOAD_TENANTS` / `PEBBLE_LOAD_REQUESTS` /
    /// `PEBBLE_LOAD_THINK_MS`, falling back to the defaults.
    pub fn from_env() -> Self {
        let d = ClosedLoopConfig::default();
        ClosedLoopConfig {
            tenants: env_usize("PEBBLE_LOAD_TENANTS", d.tenants),
            requests_per_tenant: env_usize("PEBBLE_LOAD_REQUESTS", d.requests_per_tenant),
            think: Duration::from_millis(env_usize(
                "PEBBLE_LOAD_THINK_MS",
                d.think.as_millis() as usize,
            ) as u64),
        }
    }
}

/// Open-loop generator parameters.
#[derive(Clone, Debug)]
pub struct OpenLoopConfig {
    /// Offered arrival rate, requests per second.
    pub rate_per_sec: f64,
    /// Total requests to schedule.
    pub total_requests: usize,
    /// Sender threads draining the arrival schedule. Must exceed the
    /// service's concurrency for the measured queueing delay to be the
    /// service's, not the generator's.
    pub senders: usize,
}

/// Parses `PEBBLE_LOAD_RATES` (comma-separated requests/sec) or returns
/// `default` — the offered-load sweep for `loadbench`.
pub fn rates_from_env(default: &[f64]) -> Vec<f64> {
    match std::env::var("PEBBLE_LOAD_RATES") {
        Ok(raw) if !raw.trim().is_empty() => {
            let rates: Vec<f64> = raw
                .split(',')
                .filter_map(|s| s.trim().parse::<f64>().ok())
                .filter(|r| *r > 0.0)
                .collect();
            if rates.is_empty() {
                pebble_obs::diag::warn_once(
                    "PEBBLE_LOAD_RATES",
                    &format!("ignoring invalid PEBBLE_LOAD_RATES={raw:?}"),
                );
                default.to_vec()
            } else {
                rates
            }
        }
        _ => default.to_vec(),
    }
}

/// Client-side results of one load-generation run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Offered arrival rate (open loop only).
    pub offered_rate: Option<f64>,
    /// Generator threads (tenants or senders).
    pub tenants: usize,
    /// Requests completed (a terminal frame was received).
    pub completed: u64,
    /// Requests whose terminal frame was an `ERROR`.
    pub errors: u64,
    /// Transport failures (connect/read errors — not service `ERROR`s).
    pub transport_errors: u64,
    /// Total content frames received.
    pub frames: u64,
    /// Wall clock from first scheduled arrival to last completion.
    pub elapsed: Duration,
    /// Client-observed latency distribution, ns. Closed loop: service
    /// time. Open loop: scheduled-arrival to completion (queueing
    /// included).
    pub latency: HistogramSnapshot,
    /// Completions per request kind, in [`RequestKind::ALL`] order.
    pub kind_completed: [u64; REQUEST_KINDS],
    /// `ERROR`-terminated requests per request kind.
    pub kind_errors: [u64; REQUEST_KINDS],
}

impl LoadReport {
    /// Achieved throughput, completed requests per second.
    pub fn achieved_rate(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }

    /// Latency summary (shared `_ns` quantile rule).
    pub fn summary(&self) -> DurationSummary {
        DurationSummary::from_snapshot(&self.latency)
    }

    /// Completions for one request kind.
    pub fn completed_for(&self, kind: RequestKind) -> u64 {
        self.kind_completed[kind.idx()]
    }
}

/// Offset each tenant's walk through the mix by a co-prime-ish stride so
/// tenants don't issue identical request sequences in lockstep, while the
/// issued multiset stays deterministic.
fn mix_index(tenant: usize, step: usize, len: usize) -> usize {
    (tenant * 7 + step) % len
}

struct Tally {
    completed: AtomicU64,
    errors: AtomicU64,
    transport_errors: AtomicU64,
    frames: AtomicU64,
    latency: LogHistogram,
    kind_completed: [AtomicU64; REQUEST_KINDS],
    kind_errors: [AtomicU64; REQUEST_KINDS],
}

impl Tally {
    fn new() -> Self {
        Tally {
            completed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            transport_errors: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            latency: LogHistogram::new(),
            kind_completed: Default::default(),
            kind_errors: Default::default(),
        }
    }

    fn observe(&self, request: &str, result: &io::Result<Vec<String>>, latency_ns: u64) {
        match result {
            Ok(frames) => {
                let kind = RequestKind::from_request(request);
                self.completed.fetch_add(1, Relaxed);
                self.frames.fetch_add(frames.len() as u64, Relaxed);
                self.latency.record(latency_ns);
                self.kind_completed[kind.idx()].fetch_add(1, Relaxed);
                if frames.last().is_some_and(|f| f.starts_with("ERROR ")) {
                    self.errors.fetch_add(1, Relaxed);
                    self.kind_errors[kind.idx()].fetch_add(1, Relaxed);
                }
            }
            Err(_) => {
                self.transport_errors.fetch_add(1, Relaxed);
            }
        }
    }

    fn into_report(
        self,
        offered_rate: Option<f64>,
        tenants: usize,
        elapsed: Duration,
    ) -> LoadReport {
        LoadReport {
            offered_rate,
            tenants,
            completed: self.completed.into_inner(),
            errors: self.errors.into_inner(),
            transport_errors: self.transport_errors.into_inner(),
            frames: self.frames.into_inner(),
            elapsed,
            latency: self.latency.snapshot(),
            kind_completed: self.kind_completed.map(AtomicU64::into_inner),
            kind_errors: self.kind_errors.map(AtomicU64::into_inner),
        }
    }
}

/// Runs a closed-loop (think-time) workload: each of `cfg.tenants`
/// threads walks `mix` from its own offset, waiting for each response
/// before thinking and issuing the next request.
pub fn run_closed_loop<T>(transport: T, mix: &[String], cfg: &ClosedLoopConfig) -> LoadReport
where
    T: Fn(&str) -> io::Result<Vec<String>> + Sync,
{
    assert!(!mix.is_empty(), "load mix must not be empty");
    let tally = Tally::new();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for tenant in 0..cfg.tenants {
            let (transport, tally) = (&transport, &tally);
            scope.spawn(move || {
                for step in 0..cfg.requests_per_tenant {
                    let request = &mix[mix_index(tenant, step, mix.len())];
                    let t0 = Instant::now();
                    let result = transport(request);
                    tally.observe(request, &result, t0.elapsed().as_nanos() as u64);
                    if !cfg.think.is_zero() && step + 1 < cfg.requests_per_tenant {
                        std::thread::sleep(cfg.think);
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();
    tally.into_report(None, cfg.tenants, elapsed)
}

/// Runs an open-loop (fixed arrival rate) workload: request `i` of `mix`
/// (round-robin) is scheduled at `i / rate_per_sec`; sender threads claim
/// arrivals in order, wait for the scheduled instant, and issue the
/// request. Latency is measured from the *scheduled* arrival, so time
/// spent queueing behind a saturated service is part of the number.
pub fn run_open_loop<T>(transport: T, mix: &[String], cfg: &OpenLoopConfig) -> LoadReport
where
    T: Fn(&str) -> io::Result<Vec<String>> + Sync,
{
    assert!(!mix.is_empty(), "load mix must not be empty");
    assert!(cfg.rate_per_sec > 0.0, "offered rate must be positive");
    let tally = Tally::new();
    let next = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..cfg.senders.max(1) {
            let (transport, tally, next) = (&transport, &tally, &next);
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Relaxed);
                if i >= cfg.total_requests {
                    break;
                }
                let due = Duration::from_secs_f64(i as f64 / cfg.rate_per_sec);
                let scheduled = start + due;
                let now = Instant::now();
                if scheduled > now {
                    std::thread::sleep(scheduled - now);
                }
                let request = &mix[i % mix.len()];
                let result = transport(request);
                let latency = scheduled.elapsed().as_nanos() as u64;
                tally.observe(request, &result, latency);
            });
        }
    });
    let elapsed = start.elapsed();
    tally.into_report(Some(cfg.rate_per_sec), cfg.senders, elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-process "service": echoes a DONE frame after a tiny spin.
    fn echo(request: &str) -> io::Result<Vec<String>> {
        if request.starts_with("FAIL") {
            return Ok(vec!["ERROR synthetic".to_string()]);
        }
        Ok(vec!["PROGRESS 0/1".to_string(), "DONE 1".to_string()])
    }

    #[test]
    fn closed_loop_counts_reconcile() {
        let mix = vec![
            "BACKTRACE 0".to_string(),
            "HEATMAP 5".to_string(),
            "FAIL".to_string(),
        ];
        let cfg = ClosedLoopConfig {
            tenants: 3,
            requests_per_tenant: 6,
            think: Duration::ZERO,
        };
        let r = run_closed_loop(echo, &mix, &cfg);
        assert_eq!(r.completed, 18);
        assert_eq!(r.transport_errors, 0);
        assert_eq!(r.errors, 6); // each tenant hits FAIL twice in 6 steps
        assert_eq!(r.latency.count, 18);
        assert_eq!(
            r.kind_completed.iter().sum::<u64>(),
            r.completed,
            "per-kind completions must cover every request"
        );
        assert_eq!(r.completed_for(RequestKind::Backtrace), 6);
        assert_eq!(r.completed_for(RequestKind::Heatmap), 6);
        assert_eq!(r.completed_for(RequestKind::Other), 6);
        assert_eq!(r.kind_errors[RequestKind::Other.idx()], 6);
        assert!(r.frames >= 18);
    }

    #[test]
    fn open_loop_issues_all_arrivals_and_includes_queue_wait() {
        let mix = vec!["AUDIT".to_string()];
        let cfg = OpenLoopConfig {
            rate_per_sec: 2000.0,
            total_requests: 40,
            senders: 4,
        };
        let slow = |req: &str| {
            std::thread::sleep(Duration::from_micros(200));
            echo(req)
        };
        let r = run_open_loop(slow, &mix, &cfg);
        assert_eq!(r.completed, 40);
        assert_eq!(r.offered_rate, Some(2000.0));
        assert_eq!(r.latency.count, 40);
        // Service time alone is ~200us; scheduled-arrival latency can only
        // be larger.
        assert!(r.summary().p50_ns >= 150_000, "p50 {}", r.summary().p50_ns);
        assert!(r.achieved_rate() > 0.0);
    }

    #[test]
    fn env_knob_parsing_defaults() {
        // (Env vars are not set in the test harness.)
        let cfg = ClosedLoopConfig::from_env();
        assert!(cfg.tenants > 0 && cfg.requests_per_tenant > 0);
        let rates = rates_from_env(&[50.0, 100.0]);
        assert_eq!(rates, vec![50.0, 100.0]);
    }
}
