//! Synthetic DBLP dataset generator.
//!
//! The paper's DBLP input holds up to 1.5 billion narrow records (<50
//! attributes) of ten types (article, inproceedings, proceedings, …),
//! upscaled from `dblp.xml` while preserving characteristics such as the
//! average number of inproceedings per proceeding. This generator
//! reproduces that shape: a fixed type mix, small flat-ish records with a
//! nested `authors` list, `crossref` links from inproceedings to
//! proceedings, and a `persons` relation with aliases for scenario D3.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pebble_dataflow::Context;
use pebble_nested::{DataItem, Value};

/// The ten DBLP record types.
pub const RECORD_TYPES: [&str; 10] = [
    "article",
    "inproceedings",
    "proceedings",
    "book",
    "incollection",
    "phdthesis",
    "mastersthesis",
    "www",
    "person",
    "data",
];

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct DblpConfig {
    /// Total number of records across all types.
    pub records: usize,
    /// RNG seed.
    pub seed: u64,
    /// Average inproceedings per proceeding (preserved characteristic).
    pub inproc_per_proc: usize,
    /// Size of the author name pool.
    pub authors: usize,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig {
            records: 2000,
            seed: 42,
            inproc_per_proc: 20,
            authors: 200,
        }
    }
}

impl DblpConfig {
    /// Config with a record count and defaults otherwise.
    pub fn sized(records: usize) -> Self {
        DblpConfig {
            records,
            authors: (records / 10).clamp(20, 10_000),
            ..Default::default()
        }
    }
}

/// The generated dataset, split by record type as in the paper's setup.
#[derive(Clone, Debug, Default)]
pub struct DblpData {
    /// `article` records.
    pub articles: Vec<DataItem>,
    /// `inproceedings` records.
    pub inproceedings: Vec<DataItem>,
    /// `proceedings` records.
    pub proceedings: Vec<DataItem>,
    /// `person` records (with aliases), used by D3.
    pub persons: Vec<DataItem>,
    /// Remaining record types, kept in one miscellaneous list.
    pub other: Vec<DataItem>,
}

impl DblpData {
    /// Registers every per-type dataset in a context under its type name
    /// (plural for the three main relations).
    pub fn register(&self, ctx: &mut Context) {
        ctx.register("articles", self.articles.clone());
        ctx.register("inproceedings", self.inproceedings.clone());
        ctx.register("proceedings", self.proceedings.clone());
        ctx.register("persons", self.persons.clone());
        ctx.register("other_records", self.other.clone());
    }

    /// Total record count.
    pub fn len(&self) -> usize {
        self.articles.len()
            + self.inproceedings.len()
            + self.proceedings.len()
            + self.persons.len()
            + self.other.len()
    }

    /// True when no records were generated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Author display name (`Author N`).
pub fn author_name(k: usize) -> String {
    format!("Author {k}")
}

fn authors_bag(rng: &mut StdRng, pool: usize, max: usize) -> Value {
    let n = rng.gen_range(1..=max);
    Value::Bag(
        (0..n)
            .map(|_| {
                Value::Item(DataItem::from_fields([(
                    "name",
                    Value::str(author_name(rng.gen_range(0..pool))),
                )]))
            })
            .collect(),
    )
}

/// Generates a deterministic synthetic DBLP dataset.
pub fn generate(cfg: &DblpConfig) -> DblpData {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut data = DblpData::default();

    // Type mix: inproceedings dominate, articles second, proceedings are
    // ~1/inproc_per_proc of the inproceedings, persons a small pool, the
    // rest miscellaneous.
    let n_inproc = cfg.records * 45 / 100;
    let n_articles = cfg.records * 30 / 100;
    let n_proc = (n_inproc / cfg.inproc_per_proc).max(1);
    let n_persons = (cfg.authors / 2).max(1);
    let n_other = cfg
        .records
        .saturating_sub(n_inproc + n_articles + n_proc + n_persons);

    for p in 0..n_proc {
        data.proceedings.push(DataItem::from_fields([
            ("key", Value::str(format!("conf/c{p}"))),
            ("type", Value::str("proceedings")),
            ("title", Value::str(format!("Proc. of Conf {p}"))),
            ("year", Value::Int(2010 + (p % 10) as i64)),
            ("publisher", Value::str(format!("Publisher {}", p % 7))),
            ("isbn", Value::str(format!("978-{p:06}"))),
        ]));
    }

    for i in 0..n_inproc {
        let proc_idx = rng.gen_range(0..n_proc);
        let year = 2010 + (proc_idx % 10) as i64;
        data.inproceedings.push(DataItem::from_fields([
            ("key", Value::str(format!("conf/c{proc_idx}/paper{i}"))),
            ("type", Value::str("inproceedings")),
            ("title", Value::str(format!("Paper Title {i}"))),
            ("year", Value::Int(year)),
            ("crossref", Value::str(format!("conf/c{proc_idx}"))),
            ("authors", authors_bag(&mut rng, cfg.authors, 4)),
            ("pages", Value::str(format!("{}-{}", i % 400, i % 400 + 12))),
            ("booktitle", Value::str(format!("Conf {proc_idx}"))),
        ]));
    }

    for a in 0..n_articles {
        data.articles.push(DataItem::from_fields([
            ("key", Value::str(format!("journals/j{}/a{a}", a % 50))),
            ("type", Value::str("article")),
            ("title", Value::str(format!("Article Title {a}"))),
            ("year", Value::Int(2008 + (a % 12) as i64)),
            ("journal", Value::str(format!("Journal {}", a % 50))),
            ("volume", Value::Int((a % 40) as i64)),
            ("authors", authors_bag(&mut rng, cfg.authors, 5)),
            ("ee", Value::str(format!("https://doi.example/{a}"))),
        ]));
    }

    for k in 0..n_persons {
        let author = k * 2; // every second pool author has a person record
        let n_alias = rng.gen_range(0..3usize);
        data.persons.push(DataItem::from_fields([
            ("key", Value::str(format!("homepages/p{k}"))),
            ("type", Value::str("person")),
            ("name", Value::str(author_name(author))),
            (
                "aliases",
                Value::Bag(
                    (0..n_alias)
                        .map(|j| Value::str(format!("A. {author}-{j}")))
                        .collect(),
                ),
            ),
            ("affiliation", Value::str(format!("Institute {}", k % 23))),
        ]));
    }

    for o in 0..n_other {
        let ty = RECORD_TYPES[3 + (o % 6)]; // book..www, data
        data.other.push(DataItem::from_fields([
            ("key", Value::str(format!("{ty}/{o}"))),
            ("type", Value::str(ty)),
            ("title", Value::str(format!("{ty} item {o}"))),
            ("year", Value::Int(2000 + (o % 20) as i64)),
            ("authors", authors_bag(&mut rng, cfg.authors, 2)),
        ]));
    }

    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_nested::Path;

    #[test]
    fn deterministic_and_sized() {
        let cfg = DblpConfig::sized(1000);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.inproceedings, b.inproceedings);
        assert!(a.len() >= 900 && a.len() <= 1100);
    }

    #[test]
    fn crossref_links_resolve() {
        let d = generate(&DblpConfig::sized(500));
        let proc_keys: Vec<&str> = d
            .proceedings
            .iter()
            .filter_map(|p| p.get("key").and_then(|v| v.as_str()))
            .collect();
        for ip in &d.inproceedings {
            let cr = ip.get("crossref").unwrap().as_str().unwrap();
            assert!(proc_keys.contains(&cr), "dangling crossref {cr}");
        }
    }

    #[test]
    fn ratio_roughly_preserved() {
        let cfg = DblpConfig::sized(4000);
        let d = generate(&cfg);
        let ratio = d.inproceedings.len() / d.proceedings.len();
        assert!(
            (cfg.inproc_per_proc / 2..=cfg.inproc_per_proc * 2).contains(&ratio),
            "ratio {ratio}"
        );
    }

    #[test]
    fn authors_nested_and_persons_alias() {
        let d = generate(&DblpConfig::sized(500));
        let ip = &d.inproceedings[0];
        assert!(Path::parse("authors[1].name").eval(ip).is_some());
        assert!(d.persons.iter().any(|p| {
            p.get("aliases")
                .and_then(Value::as_collection)
                .is_some_and(|a| !a.is_empty())
        }));
    }

    #[test]
    fn register_exposes_all_sources() {
        let mut ctx = Context::new();
        generate(&DblpConfig::sized(200)).register(&mut ctx);
        for s in [
            "articles",
            "inproceedings",
            "proceedings",
            "persons",
            "other_records",
        ] {
            assert!(ctx.source(s).is_some(), "missing source {s}");
        }
    }
}
