//! Small, seeded contexts for the differential oracle's pipeline fuzzer.
//!
//! The oracle replays every generated pipeline on the optimized engine and
//! on the naive Tab. 5 reference interpreter; datasets therefore stay tiny
//! (tens of rows) so hundreds of pipelines execute in seconds, while
//! keeping the schema shapes the evaluation cares about: the nested
//! Twitter `user`/`entities` sub-trees and the flat-ish DBLP records with
//! `authors` bags and `crossref` links.

use pebble_dataflow::Context;

use crate::dblp::{self, DblpConfig};
use crate::twitter::{self, TwitterConfig};

/// Source names registered by [`fuzz_twitter_context`].
pub const TWITTER_SOURCES: [&str; 1] = ["tweets"];

/// Source names registered by [`fuzz_dblp_context`].
pub const DBLP_SOURCES: [&str; 3] = ["inproceedings", "proceedings", "persons"];

/// A small Twitter context: `tweets` rows of the full nested tweet shape,
/// but with a narrow `meta_*` tail so generated items stay readable in
/// minimized repros.
pub fn fuzz_twitter_context(seed: u64, tweets: usize) -> Context {
    let cfg = TwitterConfig {
        tweets,
        seed,
        users: (tweets / 3).max(4),
        extra_width: 2,
    };
    let mut ctx = Context::new();
    ctx.register("tweets", twitter::generate(&cfg));
    ctx
}

/// A small DBLP context registering the three relations the fuzzer joins
/// across: `inproceedings`, `proceedings` and `persons`.
pub fn fuzz_dblp_context(seed: u64, records: usize) -> Context {
    let cfg = DblpConfig {
        records,
        seed,
        inproc_per_proc: 6,
        authors: (records / 4).max(8),
    };
    let data = dblp::generate(&cfg);
    let mut ctx = Context::new();
    ctx.register("inproceedings", data.inproceedings);
    ctx.register("proceedings", data.proceedings);
    ctx.register("persons", data.persons);
    ctx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_contexts_are_seeded_and_small() {
        let a = fuzz_twitter_context(7, 20);
        let b = fuzz_twitter_context(7, 20);
        assert_eq!(a.source("tweets"), b.source("tweets"));
        assert_eq!(a.source("tweets").unwrap().len(), 20);

        let d = fuzz_dblp_context(7, 60);
        for s in DBLP_SOURCES {
            assert!(!d.source(s).unwrap().is_empty(), "{s} empty");
        }
    }
}
