//! Synthetic Twitter dataset generator.
//!
//! The paper evaluates on up to 500 GB of real tweets — up to 130 million
//! items with ~1000 attributes and eight nesting layers. Real traces are
//! unavailable here, so this seeded generator reproduces the *shape* the
//! evaluation depends on: a wide top level, the nested `user` object, the
//! `entities` sub-tree with `hashtags`/`user_mentions`/`media` lists, a
//! deep `place` structure, a skewed `retweet_count`, and text containing
//! the scenario vocabulary (`good`, `BTS`, `@mentions`). Scale is
//! controlled by item count instead of gigabytes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pebble_nested::{DataItem, Value};

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct TwitterConfig {
    /// Number of tweets.
    pub tweets: usize,
    /// RNG seed (generation is fully deterministic).
    pub seed: u64,
    /// Size of the user pool (authors and mentioned users).
    pub users: usize,
    /// Extra scalar attributes per tweet, mimicking the very wide real
    /// schema.
    pub extra_width: usize,
}

impl Default for TwitterConfig {
    fn default() -> Self {
        TwitterConfig {
            tweets: 1000,
            seed: 42,
            users: 100,
            extra_width: 24,
        }
    }
}

impl TwitterConfig {
    /// Config with a given tweet count and defaults otherwise.
    pub fn sized(tweets: usize) -> Self {
        TwitterConfig {
            tweets,
            users: (tweets / 10).clamp(10, 5000),
            ..Default::default()
        }
    }
}

/// User id used by the generator (`u0`, `u1`, …).
pub fn user_id(k: usize) -> String {
    format!("u{k}")
}

/// User display name used by the generator.
pub fn user_name(k: usize) -> String {
    format!("User {k}")
}

fn user_item(k: usize, rng: &mut StdRng) -> DataItem {
    DataItem::from_fields([
        ("id_str", Value::str(user_id(k))),
        ("name", Value::str(user_name(k))),
        ("screen_name", Value::str(format!("user_{k}"))),
        ("followers_count", Value::Int(rng.gen_range(0..100_000))),
        ("verified", Value::Bool(rng.gen_bool(0.05))),
        ("location", Value::str(format!("City {}", k % 37))),
    ])
}

fn mention_item(k: usize) -> DataItem {
    DataItem::from_fields([
        ("id_str", Value::str(user_id(k))),
        ("name", Value::str(user_name(k))),
    ])
}

const TOPICS: &[&str] = &[
    "this is a good day",
    "what a good game by BTS",
    "BTS dropped a new album",
    "Hello World",
    "nothing much happening",
    "rust makes systems fun",
    "provenance is underrated",
    "good vibes only",
];

/// Generates a deterministic synthetic tweet dataset.
pub fn generate(cfg: &TwitterConfig) -> Vec<DataItem> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.tweets);
    for i in 0..cfg.tweets {
        let author = rng.gen_range(0..cfg.users);
        let n_mentions = rng.gen_range(0..4usize);
        let mentions: Vec<usize> = (0..n_mentions)
            .map(|_| rng.gen_range(0..cfg.users))
            .collect();
        let topic = TOPICS[rng.gen_range(0..TOPICS.len())];
        let mut text = topic.to_string();
        for m in &mentions {
            text.push_str(&format!(" @{}", user_id(*m)));
        }
        let n_hashtags = rng.gen_range(0..3usize);
        let hashtags: Vec<Value> = (0..n_hashtags)
            .map(|_| {
                Value::Item(DataItem::from_fields([(
                    "text",
                    Value::str(format!("tag{}", rng.gen_range(0..50))),
                )]))
            })
            .collect();
        let n_media = rng.gen_range(0..2usize);
        let media: Vec<Value> = (0..n_media)
            .map(|j| {
                Value::Item(DataItem::from_fields([
                    ("id", Value::Int((i * 10 + j) as i64)),
                    ("type", Value::str("photo")),
                    (
                        "sizes",
                        Value::Item(DataItem::from_fields([
                            (
                                "large",
                                Value::Item(DataItem::from_fields([
                                    ("w", Value::Int(1024)),
                                    ("h", Value::Int(768)),
                                ])),
                            ),
                            (
                                "thumb",
                                Value::Item(DataItem::from_fields([
                                    ("w", Value::Int(150)),
                                    ("h", Value::Int(150)),
                                ])),
                            ),
                        ])),
                    ),
                ]))
            })
            .collect();
        // Skewed retweet_count: most tweets have zero retweets.
        let retweet_count = if rng.gen_bool(0.6) {
            0
        } else {
            rng.gen_range(1..1000)
        };
        let mut tweet = DataItem::from_fields([
            ("id_str", Value::str(format!("t{i}"))),
            ("text", Value::str(text)),
            ("user", Value::Item(user_item(author, &mut rng))),
            (
                "entities",
                Value::Item(DataItem::from_fields([
                    ("hashtags", Value::Bag(hashtags)),
                    (
                        "user_mentions",
                        Value::Bag(
                            mentions
                                .iter()
                                .map(|&m| Value::Item(mention_item(m)))
                                .collect(),
                        ),
                    ),
                    ("media", Value::Bag(media)),
                ])),
            ),
            ("retweet_count", Value::Int(retweet_count)),
            ("favorite_count", Value::Int(rng.gen_range(0..500))),
            (
                "lang",
                Value::str(if rng.gen_bool(0.8) { "en" } else { "de" }),
            ),
            (
                "created_at",
                Value::str(format!(
                    "2019-0{}-{:02}",
                    rng.gen_range(1..10),
                    rng.gen_range(1..29)
                )),
            ),
            (
                "place",
                Value::Item(DataItem::from_fields([
                    ("id", Value::str(format!("p{}", i % 97))),
                    ("country", Value::str("Wonderland")),
                    (
                        "bounding_box",
                        Value::Item(DataItem::from_fields([
                            ("type", Value::str("Polygon")),
                            (
                                "coordinates",
                                Value::Bag(vec![Value::Bag(vec![
                                    Value::Double(rng.gen_range(-90.0..90.0)),
                                    Value::Double(rng.gen_range(-180.0..180.0)),
                                ])]),
                            ),
                        ])),
                    ),
                ])),
            ),
        ]);
        for w in 0..cfg.extra_width {
            tweet.push(format!("meta_{w}"), Value::Int(rng.gen_range(0..1_000_000)));
        }
        out.push(tweet);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_nested::Path;

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = TwitterConfig::sized(50);
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = TwitterConfig {
            seed: 7,
            ..cfg.clone()
        };
        assert_ne!(generate(&cfg), generate(&other));
    }

    #[test]
    fn shape_matches_expectations() {
        let items = generate(&TwitterConfig::sized(100));
        assert_eq!(items.len(), 100);
        let t = &items[0];
        assert!(t.get("text").is_some());
        assert!(Path::parse("user.id_str").eval(t).is_some());
        assert!(Path::parse("entities.user_mentions").eval(t).is_some());
        // Deep nesting exists (≥ 5 levels through place.bounding_box).
        assert!(Path::parse("place.bounding_box.coordinates[1][1]")
            .eval(t)
            .is_some());
        // Wide top level.
        assert!(t.len() > 25);
    }

    #[test]
    fn vocabulary_present_for_scenarios() {
        let items = generate(&TwitterConfig::sized(500));
        let texts: Vec<&str> = items
            .iter()
            .filter_map(|t| t.get("text").and_then(|v| v.as_str()))
            .collect();
        assert!(texts.iter().any(|t| t.contains("good")));
        assert!(texts.iter().any(|t| t.contains("BTS")));
        assert!(items
            .iter()
            .any(|t| { t.get("retweet_count") == Some(&Value::Int(0)) }));
    }
}
