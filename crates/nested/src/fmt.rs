//! Table-style pretty printer for datasets of nested items, used by the
//! examples to render inputs/outputs like Tabs. 1 and 2 of the paper.

use crate::value::{DataItem, Value};

/// Renders a slice of data items as an aligned text table. Top-level
/// attributes become columns; nested values are rendered inline in the
/// paper's `⟨…⟩` / `{{…}}` notation.
pub fn render_table(items: &[DataItem]) -> String {
    let mut columns: Vec<String> = Vec::new();
    for item in items {
        for name in item.names() {
            if !columns.iter().any(|c| c == name) {
                columns.push(name.to_string());
            }
        }
    }
    if columns.is_empty() {
        return "(empty dataset)\n".to_string();
    }
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(items.len());
    for item in items {
        rows.push(
            columns
                .iter()
                .map(|c| item.get(c).map(render_cell).unwrap_or_default())
                .collect(),
        );
    }
    let mut widths: Vec<usize> = columns.iter().map(String::len).collect();
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (c, w) in columns.iter().zip(&widths) {
        out.push_str(&format!("| {c:<w$} "));
    }
    out.push_str("|\n");
    sep(&mut out);
    for row in &rows {
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!("| {cell:<w$} "));
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

fn render_cell(value: &Value) -> String {
    match value {
        Value::Str(s) => s.to_string(),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let items = vec![
            DataItem::from_fields([("text", Value::str("Hello")), ("n", Value::Int(1))]),
            DataItem::from_fields([("text", Value::str("Hello World")), ("n", Value::Int(22))]),
        ];
        let t = render_table(&items);
        assert!(t.contains("| text        | n  |"));
        assert!(t.contains("| Hello World | 22 |"));
    }

    #[test]
    fn handles_heterogeneous_and_empty() {
        assert_eq!(render_table(&[]), "(empty dataset)\n");
        let items = vec![
            DataItem::from_fields([("a", Value::Int(1))]),
            DataItem::from_fields([("b", Value::Int(2))]),
        ];
        let t = render_table(&items);
        assert!(t.contains("a"));
        assert!(t.contains("b"));
    }
}
