//! Binary codec primitives for identifiers, labels and nested values.
//!
//! The provenance layer persists association tables (dense `u64` identifier
//! sequences), schemas, and result rows. This module owns the low-level
//! encoding shared by the in-memory snapshot codec (`pebble-core::storage`)
//! and the on-disk segment format (`pebble-serve`):
//!
//! * LEB128 varints and zigzag signed varints;
//! * delta-encoded identifier sequences (ids are near-sequential, so the
//!   deltas are tiny);
//! * an interned [`StringTable`] so repeated labels and string constants
//!   are stored once;
//! * recursive codecs for [`Value`], [`DataItem`] and [`DataType`].
//!
//! Every decoder is total: malformed input yields a [`CodecError`], never a
//! panic, and recursion is depth-limited so corrupt nesting cannot blow the
//! stack.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::label::Label;
use crate::types::{DataType, Field};
use crate::value::{DataItem, Value};

/// Maximum nesting depth accepted when decoding values or types. Valid
/// pebble data is a handful of levels deep; the limit only exists so a
/// corrupt byte stream cannot trigger unbounded recursion.
pub const MAX_DEPTH: usize = 128;

/// A decoding failure: the input bytes do not form a valid encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CodecError> {
    Err(CodecError(msg.into()))
}

/// Appends `v` as an LEB128 varint (7 bits per byte, little endian).
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint, advancing the cursor.
pub fn get_varint(buf: &mut &[u8]) -> Result<u64, CodecError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let Some((&byte, rest)) = buf.split_first() else {
            return err("unexpected end of input");
        };
        *buf = rest;
        if shift >= 64 {
            return err("varint overflow");
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Zigzag-maps a signed value onto an unsigned one (small magnitudes stay
/// small).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a signed value as a zigzag varint.
pub fn put_signed(buf: &mut Vec<u8>, v: i64) {
    put_varint(buf, zigzag(v));
}

/// Reads a zigzag varint.
pub fn get_signed(buf: &mut &[u8]) -> Result<i64, CodecError> {
    Ok(unzigzag(get_varint(buf)?))
}

/// Reads one raw byte.
pub fn get_u8(buf: &mut &[u8]) -> Result<u8, CodecError> {
    let Some((&byte, rest)) = buf.split_first() else {
        return err("unexpected end of input");
    };
    *buf = rest;
    Ok(byte)
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// Reads a length-prefixed UTF-8 string.
pub fn get_str(buf: &mut &[u8]) -> Result<String, CodecError> {
    let len = get_varint(buf)? as usize;
    if buf.len() < len {
        return err("truncated string");
    }
    let (bytes, rest) = buf.split_at(len);
    *buf = rest;
    match std::str::from_utf8(bytes) {
        Ok(s) => Ok(s.to_string()),
        Err(_) => err("invalid UTF-8"),
    }
}

/// Appends an `f64` as its 8 little-endian IEEE-754 bytes.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Reads an `f64` written by [`put_f64`].
pub fn get_f64(buf: &mut &[u8]) -> Result<f64, CodecError> {
    if buf.len() < 8 {
        return err("unexpected end of input");
    }
    let (bytes, rest) = buf.split_at(8);
    *buf = rest;
    Ok(f64::from_bits(u64::from_le_bytes(
        bytes.try_into().unwrap(),
    )))
}

/// Appends a length-prefixed identifier sequence, delta-encoded: runtime
/// identifiers are near-sequential, so consecutive deltas are mostly `±1`
/// and fit in one byte each.
pub fn put_ids_delta(buf: &mut Vec<u8>, ids: &[u64]) {
    put_varint(buf, ids.len() as u64);
    let mut prev: u64 = 0;
    for &id in ids {
        put_signed(buf, id.wrapping_sub(prev) as i64);
        prev = id;
    }
}

/// Reads a sequence written by [`put_ids_delta`].
pub fn get_ids_delta(buf: &mut &[u8]) -> Result<Vec<u64>, CodecError> {
    let len = get_varint(buf)? as usize;
    // A delta costs at least one byte; reject lengths the remaining input
    // cannot possibly satisfy before allocating.
    if buf.len() < len {
        return err("truncated identifier sequence");
    }
    let mut ids = Vec::with_capacity(len);
    let mut prev: u64 = 0;
    for _ in 0..len {
        prev = prev.wrapping_add(get_signed(buf)? as u64);
        ids.push(prev);
    }
    Ok(ids)
}

/// An interned string table: encode side assigns dense ids on first use,
/// decode side resolves ids back to shared [`Arc<str>`] allocations.
#[derive(Debug, Default, Clone)]
pub struct StringTable {
    index: HashMap<String, u64>,
    strings: Vec<Arc<str>>,
}

impl StringTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its dense id.
    pub fn intern(&mut self, s: &str) -> u64 {
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        let id = self.strings.len() as u64;
        self.strings.push(Arc::from(s));
        self.index.insert(s.to_string(), id);
        id
    }

    /// Resolves an id assigned by [`StringTable::intern`] or read by
    /// [`StringTable::decode`].
    pub fn get(&self, id: u64) -> Result<&Arc<str>, CodecError> {
        match self.strings.get(id as usize) {
            Some(s) => Ok(s),
            None => err(format!("string id {id} out of range")),
        }
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when no strings have been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Appends the table: count followed by length-prefixed strings in id
    /// order.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.strings.len() as u64);
        for s in &self.strings {
            put_str(buf, s);
        }
    }

    /// Reads a table written by [`StringTable::encode`].
    pub fn decode(buf: &mut &[u8]) -> Result<StringTable, CodecError> {
        let len = get_varint(buf)? as usize;
        if buf.len() < len {
            return err("truncated string table");
        }
        let mut table = StringTable::default();
        for _ in 0..len {
            let s = get_str(buf)?;
            table.intern(&s);
        }
        Ok(table)
    }
}

const VAL_NULL: u8 = 0;
const VAL_FALSE: u8 = 1;
const VAL_TRUE: u8 = 2;
const VAL_INT: u8 = 3;
const VAL_DOUBLE: u8 = 4;
const VAL_STR: u8 = 5;
const VAL_ITEM: u8 = 6;
const VAL_BAG: u8 = 7;
const VAL_SET: u8 = 8;

/// Appends a [`Value`], interning strings and labels into `table`.
pub fn put_value(buf: &mut Vec<u8>, table: &mut StringTable, v: &Value) {
    match v {
        Value::Null => buf.push(VAL_NULL),
        Value::Bool(false) => buf.push(VAL_FALSE),
        Value::Bool(true) => buf.push(VAL_TRUE),
        Value::Int(i) => {
            buf.push(VAL_INT);
            put_signed(buf, *i);
        }
        Value::Double(d) => {
            buf.push(VAL_DOUBLE);
            put_f64(buf, *d);
        }
        Value::Str(s) => {
            buf.push(VAL_STR);
            put_varint(buf, table.intern(s));
        }
        Value::Item(item) => {
            buf.push(VAL_ITEM);
            put_item_body(buf, table, item);
        }
        Value::Bag(vs) => {
            buf.push(VAL_BAG);
            put_varint(buf, vs.len() as u64);
            for v in vs {
                put_value(buf, table, v);
            }
        }
        Value::Set(vs) => {
            buf.push(VAL_SET);
            put_varint(buf, vs.len() as u64);
            for v in vs {
                put_value(buf, table, v);
            }
        }
    }
}

fn put_item_body(buf: &mut Vec<u8>, table: &mut StringTable, item: &DataItem) {
    let entries = item.entries();
    put_varint(buf, entries.len() as u64);
    for (label, value) in entries {
        put_varint(buf, table.intern(label.as_str()));
        put_value(buf, table, value);
    }
}

/// Reads a [`Value`] written by [`put_value`].
pub fn get_value(buf: &mut &[u8], table: &StringTable) -> Result<Value, CodecError> {
    get_value_at(buf, table, 0)
}

fn get_value_at(buf: &mut &[u8], table: &StringTable, depth: usize) -> Result<Value, CodecError> {
    if depth > MAX_DEPTH {
        return err("value nesting too deep");
    }
    match get_u8(buf)? {
        VAL_NULL => Ok(Value::Null),
        VAL_FALSE => Ok(Value::Bool(false)),
        VAL_TRUE => Ok(Value::Bool(true)),
        VAL_INT => Ok(Value::Int(get_signed(buf)?)),
        VAL_DOUBLE => Ok(Value::Double(get_f64(buf)?)),
        VAL_STR => Ok(Value::Str(table.get(get_varint(buf)?)?.clone())),
        VAL_ITEM => Ok(Value::Item(get_item_body(buf, table, depth)?)),
        tag @ (VAL_BAG | VAL_SET) => {
            let len = get_varint(buf)? as usize;
            if buf.len() < len {
                return err("truncated collection");
            }
            let mut vs = Vec::with_capacity(len);
            for _ in 0..len {
                vs.push(get_value_at(buf, table, depth + 1)?);
            }
            Ok(if tag == VAL_BAG {
                Value::Bag(vs)
            } else {
                Value::Set(vs)
            })
        }
        tag => err(format!("unknown value tag {tag}")),
    }
}

fn get_item_body(
    buf: &mut &[u8],
    table: &StringTable,
    depth: usize,
) -> Result<DataItem, CodecError> {
    let len = get_varint(buf)? as usize;
    if buf.len() < len {
        return err("truncated item");
    }
    let mut parts = Vec::with_capacity(len);
    for _ in 0..len {
        let label = Label::new(table.get(get_varint(buf)?)?);
        let value = get_value_at(buf, table, depth + 1)?;
        parts.push((label, value));
    }
    Ok(DataItem::from_parts(parts))
}

/// Appends a top-level [`DataItem`].
pub fn put_item(buf: &mut Vec<u8>, table: &mut StringTable, item: &DataItem) {
    put_item_body(buf, table, item);
}

/// Reads a top-level [`DataItem`] written by [`put_item`].
pub fn get_item(buf: &mut &[u8], table: &StringTable) -> Result<DataItem, CodecError> {
    get_item_body(buf, table, 0)
}

const TY_NULL: u8 = 0;
const TY_BOOL: u8 = 1;
const TY_INT: u8 = 2;
const TY_DOUBLE: u8 = 3;
const TY_STR: u8 = 4;
const TY_ITEM: u8 = 5;
const TY_BAG: u8 = 6;
const TY_SET: u8 = 7;

/// Appends a [`DataType`].
pub fn put_type(buf: &mut Vec<u8>, ty: &DataType) {
    match ty {
        DataType::Null => buf.push(TY_NULL),
        DataType::Bool => buf.push(TY_BOOL),
        DataType::Int => buf.push(TY_INT),
        DataType::Double => buf.push(TY_DOUBLE),
        DataType::Str => buf.push(TY_STR),
        DataType::Item(fields) => {
            buf.push(TY_ITEM);
            put_varint(buf, fields.len() as u64);
            for f in fields {
                put_str(buf, &f.name);
                put_type(buf, &f.ty);
            }
        }
        DataType::Bag(elem) => {
            buf.push(TY_BAG);
            put_type(buf, elem);
        }
        DataType::Set(elem) => {
            buf.push(TY_SET);
            put_type(buf, elem);
        }
    }
}

/// Reads a [`DataType`] written by [`put_type`].
pub fn get_type(buf: &mut &[u8]) -> Result<DataType, CodecError> {
    get_type_at(buf, 0)
}

fn get_type_at(buf: &mut &[u8], depth: usize) -> Result<DataType, CodecError> {
    if depth > MAX_DEPTH {
        return err("type nesting too deep");
    }
    match get_u8(buf)? {
        TY_NULL => Ok(DataType::Null),
        TY_BOOL => Ok(DataType::Bool),
        TY_INT => Ok(DataType::Int),
        TY_DOUBLE => Ok(DataType::Double),
        TY_STR => Ok(DataType::Str),
        TY_ITEM => {
            let len = get_varint(buf)? as usize;
            if buf.len() < len {
                return err("truncated item type");
            }
            let mut fields = Vec::with_capacity(len);
            for _ in 0..len {
                let name = get_str(buf)?;
                let ty = get_type_at(buf, depth + 1)?;
                fields.push(Field::new(name, ty));
            }
            Ok(DataType::Item(fields))
        }
        TY_BAG => Ok(DataType::Bag(Box::new(get_type_at(buf, depth + 1)?))),
        TY_SET => Ok(DataType::Set(Box::new(get_type_at(buf, depth + 1)?))),
        tag => err(format!("unknown type tag {tag}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut cur = buf.as_slice();
        for &v in &values {
            assert_eq!(get_varint(&mut cur).unwrap(), v);
        }
        assert!(cur.is_empty());
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut cur: &[u8] = &[0x80];
        assert!(get_varint(&mut cur).is_err());
        let mut cur: &[u8] = &[0x80; 11];
        assert!(get_varint(&mut cur).is_err());
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn ids_delta_round_trip() {
        let ids = vec![
            1u64 << 48,
            (1u64 << 48) + 1,
            (1u64 << 48) + 2,
            (7u64 << 48) + 5,
            3,
        ];
        let mut buf = Vec::new();
        put_ids_delta(&mut buf, &ids);
        let mut cur = buf.as_slice();
        assert_eq!(get_ids_delta(&mut cur).unwrap(), ids);
        assert!(cur.is_empty());
        // Sequential ids cost ~1 byte each after the first.
        let seq: Vec<u64> = (1000..1100).collect();
        let mut buf = Vec::new();
        put_ids_delta(&mut buf, &seq);
        assert!(buf.len() < 110);
    }

    #[test]
    fn ids_delta_rejects_absurd_length() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        let mut cur = buf.as_slice();
        assert!(get_ids_delta(&mut cur).is_err());
    }

    #[test]
    fn string_table_interns_and_round_trips() {
        let mut t = StringTable::new();
        assert_eq!(t.intern("alpha"), 0);
        assert_eq!(t.intern("beta"), 1);
        assert_eq!(t.intern("alpha"), 0);
        assert_eq!(t.len(), 2);
        let mut buf = Vec::new();
        t.encode(&mut buf);
        let mut cur = buf.as_slice();
        let d = StringTable::decode(&mut cur).unwrap();
        assert_eq!(d.get(0).unwrap().as_ref(), "alpha");
        assert_eq!(d.get(1).unwrap().as_ref(), "beta");
        assert!(d.get(2).is_err());
    }

    #[test]
    fn value_round_trip() {
        let item = DataItem::from_parts(vec![
            (Label::new("name"), Value::str("ada")),
            (Label::new("score"), Value::Double(2.5)),
            (
                Label::new("tags"),
                Value::Bag(vec![Value::str("x"), Value::Int(-7), Value::Null]),
            ),
            (
                Label::new("nested"),
                Value::Item(DataItem::from_parts(vec![(
                    Label::new("name"),
                    Value::Bool(true),
                )])),
            ),
            (Label::new("set"), Value::set_from([Value::Int(1)])),
        ]);
        let mut table = StringTable::new();
        let mut buf = Vec::new();
        put_item(&mut buf, &mut table, &item);
        let mut tbuf = Vec::new();
        table.encode(&mut tbuf);
        let mut tcur = tbuf.as_slice();
        let dtable = StringTable::decode(&mut tcur).unwrap();
        let mut cur = buf.as_slice();
        let back = get_item(&mut cur, &dtable).unwrap();
        assert!(cur.is_empty());
        assert_eq!(back, item);
        // "name" is interned once even though it appears twice.
        assert_eq!(table.len(), 7);
    }

    #[test]
    fn value_decoder_is_total() {
        let table = StringTable::new();
        // Unknown tag.
        let mut cur: &[u8] = &[200];
        assert!(get_value(&mut cur, &table).is_err());
        // String id out of range.
        let mut cur: &[u8] = &[VAL_STR, 9];
        assert!(get_value(&mut cur, &table).is_err());
        // Deep nesting is rejected, not a stack overflow.
        let deep: Vec<u8> = std::iter::repeat_n([VAL_BAG, 1], MAX_DEPTH + 8)
            .flatten()
            .collect();
        let mut cur: &[u8] = &deep;
        let e = get_value(&mut cur, &table).unwrap_err();
        assert!(e.to_string().contains("too deep"));
    }

    #[test]
    fn type_round_trip_and_total() {
        let ty = DataType::bag(DataType::item([
            ("a", DataType::Int),
            ("b", DataType::Set(Box::new(DataType::Str))),
            ("c", DataType::item([("d", DataType::Double)])),
        ]));
        let mut buf = Vec::new();
        put_type(&mut buf, &ty);
        let mut cur = buf.as_slice();
        assert_eq!(get_type(&mut cur).unwrap(), ty);
        assert!(cur.is_empty());
        let mut cur: &[u8] = &[250];
        assert!(get_type(&mut cur).is_err());
        let deep = vec![TY_BAG; MAX_DEPTH + 8];
        let mut cur: &[u8] = &deep;
        assert!(get_type(&mut cur).is_err());
    }
}
