//! Binary codec primitives for identifiers, labels and nested values.
//!
//! The provenance layer persists association tables (dense `u64` identifier
//! sequences), schemas, and result rows. This module owns the low-level
//! encoding shared by the in-memory snapshot codec (`pebble-core::storage`)
//! and the on-disk segment format (`pebble-serve`):
//!
//! * LEB128 varints and zigzag signed varints;
//! * delta-encoded identifier sequences (ids are near-sequential, so the
//!   deltas are tiny);
//! * an interned [`StringTable`] so repeated labels and string constants
//!   are stored once;
//! * recursive codecs for [`Value`], [`DataItem`] and [`DataType`].
//!
//! Every decoder is total: malformed input yields a [`CodecError`], never a
//! panic, and recursion is depth-limited so corrupt nesting cannot blow the
//! stack.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Arc, OnceLock};

use crate::label::Label;
use crate::types::{DataType, Field};
use crate::value::{DataItem, Value};

/// Multiply-xor hasher (the rustc/Firefox "Fx" construction), processing
/// eight bytes per round. The codec hashes short strings and raw pointers
/// millions of times per spilled block; SipHash's per-call overhead is
/// measurable there and HashDoS resistance buys nothing for process-local
/// scratch tables.
#[derive(Default)]
struct FxHasher(u64);

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let mut rest = bytes.len() as u64;
        for (i, &b) in chunks.remainder().iter().enumerate() {
            rest ^= u64::from(b) << (8 * i + 8);
        }
        self.add(rest);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

type FxBuild = BuildHasherDefault<FxHasher>;

/// Maximum nesting depth accepted when decoding values or types. Valid
/// pebble data is a handful of levels deep; the limit only exists so a
/// corrupt byte stream cannot trigger unbounded recursion.
pub const MAX_DEPTH: usize = 128;

/// A decoding failure: the input bytes do not form a valid encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CodecError> {
    Err(CodecError(msg.into()))
}

/// Appends `v` as an LEB128 varint (7 bits per byte, little endian).
#[inline]
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint, advancing the cursor.
#[inline]
pub fn get_varint(buf: &mut &[u8]) -> Result<u64, CodecError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let Some((&byte, rest)) = buf.split_first() else {
            return err("unexpected end of input");
        };
        *buf = rest;
        if shift >= 64 {
            return err("varint overflow");
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Zigzag-maps a signed value onto an unsigned one (small magnitudes stay
/// small).
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a signed value as a zigzag varint.
#[inline]
pub fn put_signed(buf: &mut Vec<u8>, v: i64) {
    put_varint(buf, zigzag(v));
}

/// Reads a zigzag varint.
#[inline]
pub fn get_signed(buf: &mut &[u8]) -> Result<i64, CodecError> {
    Ok(unzigzag(get_varint(buf)?))
}

/// Reads one raw byte.
#[inline]
pub fn get_u8(buf: &mut &[u8]) -> Result<u8, CodecError> {
    let Some((&byte, rest)) = buf.split_first() else {
        return err("unexpected end of input");
    };
    *buf = rest;
    Ok(byte)
}

/// Appends a length-prefixed UTF-8 string.
#[inline]
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// Reads a length-prefixed UTF-8 string.
pub fn get_str(buf: &mut &[u8]) -> Result<String, CodecError> {
    let len = get_varint(buf)? as usize;
    if buf.len() < len {
        return err("truncated string");
    }
    let (bytes, rest) = buf.split_at(len);
    *buf = rest;
    match std::str::from_utf8(bytes) {
        Ok(s) => Ok(s.to_string()),
        Err(_) => err("invalid UTF-8"),
    }
}

/// CRC-32 (IEEE 802.3, reflected) over `data` — the checksum used for
/// framed blocks (on-disk segments and spill files).
///
/// Uses the slicing-by-8 variant of the table method: eight dependent
/// table lookups per 8-byte word instead of per byte, which matters when
/// a budgeted run checksums hundreds of megabytes of spill traffic. The
/// resulting checksum is identical to the classic byte-at-a-time loop
/// (the tail and any pre-existing callers still go through byte steps).
pub fn crc32(data: &[u8]) -> u32 {
    // TABLES[0] is the classic CRC table; TABLES[k][b] extends byte `b`
    // through k additional zero bytes, letting 8 input bytes fold in one
    // step.
    const TABLES: [[u32; 256]; 8] = {
        let mut tables = [[0u32; 256]; 8];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            tables[0][i] = c;
            i += 1;
        }
        let mut t = 1;
        while t < 8 {
            let mut i = 0;
            while i < 256 {
                let prev = tables[t - 1][i];
                tables[t][i] = tables[0][(prev & 0xff) as usize] ^ (prev >> 8);
                i += 1;
            }
            t += 1;
        }
        tables
    };
    let mut crc = !0u32;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        crc = TABLES[7][(lo & 0xff) as usize]
            ^ TABLES[6][((lo >> 8) & 0xff) as usize]
            ^ TABLES[5][((lo >> 16) & 0xff) as usize]
            ^ TABLES[4][((lo >> 24) & 0xff) as usize]
            ^ TABLES[3][(hi & 0xff) as usize]
            ^ TABLES[2][((hi >> 8) & 0xff) as usize]
            ^ TABLES[1][((hi >> 16) & 0xff) as usize]
            ^ TABLES[0][((hi >> 24) & 0xff) as usize];
    }
    for &b in chunks.remainder() {
        crc = TABLES[0][((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Appends one framed block (`type u8 · len u32 LE · payload · crc32 u32
/// LE`) to `out` — the shared framing of segment and spill files.
pub fn frame_block(out: &mut Vec<u8>, ty: u8, payload: &[u8]) {
    out.push(ty);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// Splits one block written by [`frame_block`] off the front of `buf`,
/// validating the length prefix and checksum.
pub fn take_frame<'a>(buf: &mut &'a [u8]) -> Result<(u8, &'a [u8]), CodecError> {
    let Some((&ty, rest)) = buf.split_first() else {
        return err("truncated frame: missing type byte");
    };
    if rest.len() < 4 {
        return err("truncated frame: missing length");
    }
    let (len_bytes, rest) = rest.split_at(4);
    let len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
    if rest.len() < len + 4 {
        return err("truncated frame: payload shorter than its length prefix");
    }
    let (payload, rest) = rest.split_at(len);
    let (crc_bytes, rest) = rest.split_at(4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(payload) != stored {
        return err("frame checksum mismatch");
    }
    *buf = rest;
    Ok((ty, payload))
}

/// Appends an `f64` as its 8 little-endian IEEE-754 bytes.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Reads an `f64` written by [`put_f64`].
pub fn get_f64(buf: &mut &[u8]) -> Result<f64, CodecError> {
    if buf.len() < 8 {
        return err("unexpected end of input");
    }
    let (bytes, rest) = buf.split_at(8);
    *buf = rest;
    Ok(f64::from_bits(u64::from_le_bytes(
        bytes.try_into().unwrap(),
    )))
}

/// Appends a length-prefixed identifier sequence, delta-encoded: runtime
/// identifiers are near-sequential, so consecutive deltas are mostly `±1`
/// and fit in one byte each.
pub fn put_ids_delta(buf: &mut Vec<u8>, ids: &[u64]) {
    put_varint(buf, ids.len() as u64);
    let mut prev: u64 = 0;
    for &id in ids {
        put_signed(buf, id.wrapping_sub(prev) as i64);
        prev = id;
    }
}

/// Reads a sequence written by [`put_ids_delta`].
pub fn get_ids_delta(buf: &mut &[u8]) -> Result<Vec<u64>, CodecError> {
    let len = get_varint(buf)? as usize;
    // A delta costs at least one byte; reject lengths the remaining input
    // cannot possibly satisfy before allocating.
    if buf.len() < len {
        return err("truncated identifier sequence");
    }
    let mut ids = Vec::with_capacity(len);
    let mut prev: u64 = 0;
    for _ in 0..len {
        prev = prev.wrapping_add(get_signed(buf)? as u64);
        ids.push(prev);
    }
    Ok(ids)
}

/// An interned string table: encode side assigns dense ids on first use,
/// decode side resolves ids back to shared [`Arc<str>`] allocations.
///
/// Interning is keyed by content (the wire format stores each distinct
/// string once, in first-use order), with a pointer-keyed fast path for
/// [`intern_arc`](StringTable::intern_arc): engine values share `Arc<str>`
/// allocations heavily (labels are globally interned, strings are cloned
/// by reference through every operator), so most lookups hit a one-word
/// hash instead of re-hashing string content. Every pointer-cached `Arc`
/// is pinned by the table, so an address can never be recycled for a
/// different string while the cache is alive.
#[derive(Debug, Default)]
pub struct StringTable {
    index: HashMap<Arc<str>, u64, FxBuild>,
    by_ptr: HashMap<usize, u64, FxBuild>,
    /// Pins for pointer-cache entries whose `Arc` is not in `strings`
    /// (same content reached through a second allocation).
    pins: Vec<Arc<str>>,
    strings: Vec<Arc<str>>,
    /// Lazily resolved [`Label`] per string, so decoding an item's labels
    /// costs an `Arc` clone instead of a global intern-table lock per
    /// attribute occurrence.
    labels: Vec<OnceLock<Label>>,
}

impl Clone for StringTable {
    fn clone(&self) -> Self {
        StringTable {
            index: self.index.clone(),
            by_ptr: self.by_ptr.clone(),
            pins: self.pins.clone(),
            strings: self.strings.clone(),
            labels: self
                .labels
                .iter()
                .map(|c| {
                    let fresh = OnceLock::new();
                    if let Some(l) = c.get() {
                        let _ = fresh.set(l.clone());
                    }
                    fresh
                })
                .collect(),
        }
    }
}

fn arc_addr(s: &Arc<str>) -> usize {
    Arc::as_ptr(s) as *const u8 as usize
}

impl StringTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its dense id.
    pub fn intern(&mut self, s: &str) -> u64 {
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        self.push_new(Arc::from(s))
    }

    /// Interns a shared string, returning its dense id. Ids are assigned
    /// by content exactly as with [`intern`](StringTable::intern) — the
    /// pointer cache only skips re-hashing allocations seen before.
    pub fn intern_arc(&mut self, s: &Arc<str>) -> u64 {
        let addr = arc_addr(s);
        if let Some(&id) = self.by_ptr.get(&addr) {
            return id;
        }
        let id = match self.index.get(s.as_ref()) {
            Some(&id) => {
                // Same content through a new allocation: pin it so the
                // address stays owned by this string.
                self.pins.push(Arc::clone(s));
                id
            }
            None => self.push_new(Arc::clone(s)),
        };
        self.by_ptr.insert(addr, id);
        id
    }

    fn push_new(&mut self, s: Arc<str>) -> u64 {
        let id = self.strings.len() as u64;
        self.by_ptr.insert(arc_addr(&s), id);
        self.index.insert(Arc::clone(&s), id);
        self.strings.push(s);
        self.labels.push(OnceLock::new());
        id
    }

    /// Resolves an id assigned by [`StringTable::intern`] or read by
    /// [`StringTable::decode`].
    pub fn get(&self, id: u64) -> Result<&Arc<str>, CodecError> {
        match self.strings.get(id as usize) {
            Some(s) => Ok(s),
            None => err(format!("string id {id} out of range")),
        }
    }

    /// Resolves an id to its interned [`Label`], memoized per table entry.
    pub fn label(&self, id: u64) -> Result<Label, CodecError> {
        match (self.labels.get(id as usize), self.strings.get(id as usize)) {
            (Some(cell), Some(s)) => Ok(cell.get_or_init(|| Label::new(s)).clone()),
            _ => err(format!("string id {id} out of range")),
        }
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when no strings have been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Appends the table: count followed by length-prefixed strings in id
    /// order.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.strings.len() as u64);
        for s in &self.strings {
            put_str(buf, s);
        }
    }

    /// Reads a table written by [`StringTable::encode`].
    pub fn decode(buf: &mut &[u8]) -> Result<StringTable, CodecError> {
        let mut table = StringTable::default();
        table.decode_append(buf)?;
        Ok(table)
    }

    /// Appends only the strings interned since `mark` (a prior
    /// [`len`](StringTable::len) value): count followed by length-prefixed
    /// strings in id order. Sequential spill files use this to carry one
    /// file-scoped table as per-block deltas, so a string repeated across
    /// blocks is written once.
    pub fn encode_from(&self, mark: usize, buf: &mut Vec<u8>) {
        put_varint(buf, (self.strings.len() - mark) as u64);
        for s in &self.strings[mark..] {
            put_str(buf, s);
        }
    }

    /// Reads a table or delta written by [`StringTable::encode`] /
    /// [`StringTable::encode_from`], appending the entries to this table.
    /// Ids line up with the encoder's as long as deltas are applied in
    /// file order.
    pub fn decode_append(&mut self, buf: &mut &[u8]) -> Result<(), CodecError> {
        let len = get_varint(buf)? as usize;
        if buf.len() < len {
            return err("truncated string table");
        }
        for _ in 0..len {
            let s = get_str(buf)?;
            self.intern(&s);
        }
        Ok(())
    }
}

const VAL_NULL: u8 = 0;
const VAL_FALSE: u8 = 1;
const VAL_TRUE: u8 = 2;
const VAL_INT: u8 = 3;
const VAL_DOUBLE: u8 = 4;
const VAL_STR: u8 = 5;
const VAL_ITEM: u8 = 6;
const VAL_BAG: u8 = 7;
const VAL_SET: u8 = 8;

/// Appends a [`Value`], interning strings and labels into `table`.
pub fn put_value(buf: &mut Vec<u8>, table: &mut StringTable, v: &Value) {
    match v {
        Value::Null => buf.push(VAL_NULL),
        Value::Bool(false) => buf.push(VAL_FALSE),
        Value::Bool(true) => buf.push(VAL_TRUE),
        Value::Int(i) => {
            buf.push(VAL_INT);
            put_signed(buf, *i);
        }
        Value::Double(d) => {
            buf.push(VAL_DOUBLE);
            put_f64(buf, *d);
        }
        Value::Str(s) => {
            buf.push(VAL_STR);
            put_varint(buf, table.intern_arc(s));
        }
        Value::Item(item) => {
            buf.push(VAL_ITEM);
            put_item_body(buf, table, item);
        }
        Value::Bag(vs) => {
            buf.push(VAL_BAG);
            put_varint(buf, vs.len() as u64);
            for v in vs {
                put_value(buf, table, v);
            }
        }
        Value::Set(vs) => {
            buf.push(VAL_SET);
            put_varint(buf, vs.len() as u64);
            for v in vs {
                put_value(buf, table, v);
            }
        }
    }
}

fn put_item_body(buf: &mut Vec<u8>, table: &mut StringTable, item: &DataItem) {
    let entries = item.entries();
    put_varint(buf, entries.len() as u64);
    for (label, value) in entries {
        put_varint(buf, table.intern_arc(label.as_arc()));
        put_value(buf, table, value);
    }
}

/// Reads a [`Value`] written by [`put_value`].
pub fn get_value(buf: &mut &[u8], table: &StringTable) -> Result<Value, CodecError> {
    get_value_at(buf, table, 0)
}

fn get_value_at(buf: &mut &[u8], table: &StringTable, depth: usize) -> Result<Value, CodecError> {
    if depth > MAX_DEPTH {
        return err("value nesting too deep");
    }
    match get_u8(buf)? {
        VAL_NULL => Ok(Value::Null),
        VAL_FALSE => Ok(Value::Bool(false)),
        VAL_TRUE => Ok(Value::Bool(true)),
        VAL_INT => Ok(Value::Int(get_signed(buf)?)),
        VAL_DOUBLE => Ok(Value::Double(get_f64(buf)?)),
        VAL_STR => Ok(Value::Str(table.get(get_varint(buf)?)?.clone())),
        VAL_ITEM => Ok(Value::Item(get_item_body(buf, table, depth)?)),
        tag @ (VAL_BAG | VAL_SET) => {
            let len = get_varint(buf)? as usize;
            if buf.len() < len {
                return err("truncated collection");
            }
            let mut vs = Vec::with_capacity(len);
            for _ in 0..len {
                vs.push(get_value_at(buf, table, depth + 1)?);
            }
            Ok(if tag == VAL_BAG {
                Value::Bag(vs)
            } else {
                Value::Set(vs)
            })
        }
        tag => err(format!("unknown value tag {tag}")),
    }
}

fn get_item_body(
    buf: &mut &[u8],
    table: &StringTable,
    depth: usize,
) -> Result<DataItem, CodecError> {
    let len = get_varint(buf)? as usize;
    if buf.len() < len {
        return err("truncated item");
    }
    let mut parts = Vec::with_capacity(len);
    for _ in 0..len {
        let label = table.label(get_varint(buf)?)?;
        let value = get_value_at(buf, table, depth + 1)?;
        parts.push((label, value));
    }
    Ok(DataItem::from_parts(parts))
}

/// Appends a top-level [`DataItem`].
pub fn put_item(buf: &mut Vec<u8>, table: &mut StringTable, item: &DataItem) {
    put_item_body(buf, table, item);
}

/// Reads a top-level [`DataItem`] written by [`put_item`].
pub fn get_item(buf: &mut &[u8], table: &StringTable) -> Result<DataItem, CodecError> {
    get_item_body(buf, table, 0)
}

const TY_NULL: u8 = 0;
const TY_BOOL: u8 = 1;
const TY_INT: u8 = 2;
const TY_DOUBLE: u8 = 3;
const TY_STR: u8 = 4;
const TY_ITEM: u8 = 5;
const TY_BAG: u8 = 6;
const TY_SET: u8 = 7;

/// Appends a [`DataType`].
pub fn put_type(buf: &mut Vec<u8>, ty: &DataType) {
    match ty {
        DataType::Null => buf.push(TY_NULL),
        DataType::Bool => buf.push(TY_BOOL),
        DataType::Int => buf.push(TY_INT),
        DataType::Double => buf.push(TY_DOUBLE),
        DataType::Str => buf.push(TY_STR),
        DataType::Item(fields) => {
            buf.push(TY_ITEM);
            put_varint(buf, fields.len() as u64);
            for f in fields {
                put_str(buf, &f.name);
                put_type(buf, &f.ty);
            }
        }
        DataType::Bag(elem) => {
            buf.push(TY_BAG);
            put_type(buf, elem);
        }
        DataType::Set(elem) => {
            buf.push(TY_SET);
            put_type(buf, elem);
        }
    }
}

/// Reads a [`DataType`] written by [`put_type`].
pub fn get_type(buf: &mut &[u8]) -> Result<DataType, CodecError> {
    get_type_at(buf, 0)
}

fn get_type_at(buf: &mut &[u8], depth: usize) -> Result<DataType, CodecError> {
    if depth > MAX_DEPTH {
        return err("type nesting too deep");
    }
    match get_u8(buf)? {
        TY_NULL => Ok(DataType::Null),
        TY_BOOL => Ok(DataType::Bool),
        TY_INT => Ok(DataType::Int),
        TY_DOUBLE => Ok(DataType::Double),
        TY_STR => Ok(DataType::Str),
        TY_ITEM => {
            let len = get_varint(buf)? as usize;
            if buf.len() < len {
                return err("truncated item type");
            }
            let mut fields = Vec::with_capacity(len);
            for _ in 0..len {
                let name = get_str(buf)?;
                let ty = get_type_at(buf, depth + 1)?;
                fields.push(Field::new(name, ty));
            }
            Ok(DataType::Item(fields))
        }
        TY_BAG => Ok(DataType::Bag(Box::new(get_type_at(buf, depth + 1)?))),
        TY_SET => Ok(DataType::Set(Box::new(get_type_at(buf, depth + 1)?))),
        tag => err(format!("unknown type tag {tag}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut cur = buf.as_slice();
        for &v in &values {
            assert_eq!(get_varint(&mut cur).unwrap(), v);
        }
        assert!(cur.is_empty());
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut cur: &[u8] = &[0x80];
        assert!(get_varint(&mut cur).is_err());
        let mut cur: &[u8] = &[0x80; 11];
        assert!(get_varint(&mut cur).is_err());
    }

    #[test]
    fn crc32_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn frame_round_trip_and_rejection() {
        let mut out = Vec::new();
        frame_block(&mut out, 4, b"alpha");
        frame_block(&mut out, 9, b"");
        let mut cur = out.as_slice();
        assert_eq!(take_frame(&mut cur).unwrap(), (4, b"alpha".as_slice()));
        assert_eq!(take_frame(&mut cur).unwrap(), (9, b"".as_slice()));
        assert!(cur.is_empty());
        // A flipped payload byte fails the checksum; truncation is typed.
        let mut corrupt = out.clone();
        corrupt[6] ^= 0x40;
        let mut cur = corrupt.as_slice();
        assert!(take_frame(&mut cur)
            .unwrap_err()
            .to_string()
            .contains("checksum"));
        for cut in 0..out.len() - 1 {
            let mut cur = &out[..cut];
            let first = take_frame(&mut cur);
            if cut < 10 {
                assert!(first.is_err(), "prefix {cut} should not parse");
            }
        }
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn ids_delta_round_trip() {
        let ids = vec![
            1u64 << 48,
            (1u64 << 48) + 1,
            (1u64 << 48) + 2,
            (7u64 << 48) + 5,
            3,
        ];
        let mut buf = Vec::new();
        put_ids_delta(&mut buf, &ids);
        let mut cur = buf.as_slice();
        assert_eq!(get_ids_delta(&mut cur).unwrap(), ids);
        assert!(cur.is_empty());
        // Sequential ids cost ~1 byte each after the first.
        let seq: Vec<u64> = (1000..1100).collect();
        let mut buf = Vec::new();
        put_ids_delta(&mut buf, &seq);
        assert!(buf.len() < 110);
    }

    #[test]
    fn ids_delta_rejects_absurd_length() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        let mut cur = buf.as_slice();
        assert!(get_ids_delta(&mut cur).is_err());
    }

    #[test]
    fn string_table_interns_and_round_trips() {
        let mut t = StringTable::new();
        assert_eq!(t.intern("alpha"), 0);
        assert_eq!(t.intern("beta"), 1);
        assert_eq!(t.intern("alpha"), 0);
        assert_eq!(t.len(), 2);
        let mut buf = Vec::new();
        t.encode(&mut buf);
        let mut cur = buf.as_slice();
        let d = StringTable::decode(&mut cur).unwrap();
        assert_eq!(d.get(0).unwrap().as_ref(), "alpha");
        assert_eq!(d.get(1).unwrap().as_ref(), "beta");
        assert!(d.get(2).is_err());
    }

    #[test]
    fn value_round_trip() {
        let item = DataItem::from_parts(vec![
            (Label::new("name"), Value::str("ada")),
            (Label::new("score"), Value::Double(2.5)),
            (
                Label::new("tags"),
                Value::Bag(vec![Value::str("x"), Value::Int(-7), Value::Null]),
            ),
            (
                Label::new("nested"),
                Value::Item(DataItem::from_parts(vec![(
                    Label::new("name"),
                    Value::Bool(true),
                )])),
            ),
            (Label::new("set"), Value::set_from([Value::Int(1)])),
        ]);
        let mut table = StringTable::new();
        let mut buf = Vec::new();
        put_item(&mut buf, &mut table, &item);
        let mut tbuf = Vec::new();
        table.encode(&mut tbuf);
        let mut tcur = tbuf.as_slice();
        let dtable = StringTable::decode(&mut tcur).unwrap();
        let mut cur = buf.as_slice();
        let back = get_item(&mut cur, &dtable).unwrap();
        assert!(cur.is_empty());
        assert_eq!(back, item);
        // "name" is interned once even though it appears twice.
        assert_eq!(table.len(), 7);
    }

    #[test]
    fn value_decoder_is_total() {
        let table = StringTable::new();
        // Unknown tag.
        let mut cur: &[u8] = &[200];
        assert!(get_value(&mut cur, &table).is_err());
        // String id out of range.
        let mut cur: &[u8] = &[VAL_STR, 9];
        assert!(get_value(&mut cur, &table).is_err());
        // Deep nesting is rejected, not a stack overflow.
        let deep: Vec<u8> = std::iter::repeat_n([VAL_BAG, 1], MAX_DEPTH + 8)
            .flatten()
            .collect();
        let mut cur: &[u8] = &deep;
        let e = get_value(&mut cur, &table).unwrap_err();
        assert!(e.to_string().contains("too deep"));
    }

    #[test]
    fn type_round_trip_and_total() {
        let ty = DataType::bag(DataType::item([
            ("a", DataType::Int),
            ("b", DataType::Set(Box::new(DataType::Str))),
            ("c", DataType::item([("d", DataType::Double)])),
        ]));
        let mut buf = Vec::new();
        put_type(&mut buf, &ty);
        let mut cur = buf.as_slice();
        assert_eq!(get_type(&mut cur).unwrap(), ty);
        assert!(cur.is_empty());
        let mut cur: &[u8] = &[250];
        assert!(get_type(&mut cur).is_err());
        let deep = vec![TY_BAG; MAX_DEPTH + 8];
        let mut cur: &[u8] = &deep;
        assert!(get_type(&mut cur).is_err());
    }
}
