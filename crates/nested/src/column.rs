//! Column-major batches of [`DataItem`]s.
//!
//! The engine's morsel scheduler moves rows as `Vec<DataItem>`; a
//! [`ColumnBatch`] is the transposed, Arrow-flavoured view of the same
//! rows: one [`Column`] per distinct attribute [`Label`], nested bags and
//! sets as offset+child arrays, strings as shared `Arc<str>` handles. The
//! conversion is *lossless* — [`ColumnBatch::to_items`] reproduces the
//! original items bit-for-bit, including attribute order, the bag/set
//! distinction, and the `Int` vs `Double` variant of numerically equal
//! values — because structural provenance ids are positional and any drift
//! in shape would change what an id points at.
//!
//! Two pieces of metadata make losslessness cheap:
//!
//! * **Shapes** — the distinct attribute-label sequences that occur in the
//!   batch, plus a per-row shape index. Real datasets have a handful of
//!   shapes, so this costs one small `u32` per row while preserving each
//!   item's exact field order (and which fields are missing).
//! * **Presence rows** — a column that is absent from some rows stores the
//!   ascending row indices that do hold it; dense columns store nothing.
//!
//! A [`SelectionVector`] lets filters *mark* surviving rows instead of
//! moving them; downstream kernels loop over the selection and derive
//! output ids from positions within it.

use std::collections::HashMap;
use std::sync::Arc;

use crate::label::Label;
use crate::value::{DataItem, Value};

/// The rows a filter kept, as ascending indices into the batch (or, for
/// chained kernels, into the previous stage's output). Marking survivors
/// instead of compacting them keeps every untouched column shareable and
/// makes output ids fall out of the position *within* the selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionVector {
    sel: Vec<u32>,
}

impl SelectionVector {
    /// Selects every row of an `n`-row batch.
    pub fn all(n: usize) -> Self {
        SelectionVector {
            sel: (0..n as u32).collect(),
        }
    }

    /// An empty selection.
    pub fn empty() -> Self {
        SelectionVector { sel: Vec::new() }
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        self.sel.len()
    }

    /// True if nothing is selected.
    pub fn is_empty(&self) -> bool {
        self.sel.is_empty()
    }

    /// The selected row indices, ascending.
    pub fn indices(&self) -> &[u32] {
        &self.sel
    }

    /// Appends a row index (must be greater than the last one).
    pub fn push(&mut self, row: u32) {
        debug_assert!(self.sel.last().is_none_or(|&l| l < row));
        self.sel.push(row);
    }

    /// Keeps only the selected rows for which `keep` returns true. The
    /// closure receives `(position_in_selection, row_index)` so filter
    /// kernels can pair each survivor with its pre-filter position.
    pub fn retain(&mut self, mut keep: impl FnMut(usize, u32) -> bool) {
        let mut pos = 0;
        self.sel.retain(|&row| {
            let k = keep(pos, row);
            pos += 1;
            k
        });
    }

    /// Fraction of `total` rows selected (1.0 for an empty batch).
    pub fn density(&self, total: usize) -> f64 {
        if total == 0 {
            1.0
        } else {
            self.sel.len() as f64 / total as f64
        }
    }
}

/// The values of one column, specialized by kind when the column is
/// uniform and falling back to [`ColumnData::Mixed`] otherwise. The
/// fallback is what guarantees losslessness: nulls, nested items, and
/// mixed-kind columns keep their exact [`Value`]s.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// All values are `Value::Int`.
    Int(Vec<i64>),
    /// All values are `Value::Double` (never merged with `Int`, so the
    /// variant of numerically equal values survives the round-trip).
    Double(Vec<f64>),
    /// All values are `Value::Bool`.
    Bool(Vec<bool>),
    /// All values are `Value::Str`; the `Arc` handles are shared with the
    /// source rows, so building the column never copies text.
    Str(Vec<Arc<str>>),
    /// All values are bags (or all sets): Arrow-style list column. Row `i`
    /// owns child elements `offsets[i]..offsets[i + 1]`.
    List {
        /// True when the source values were `Value::Set`, false for bags.
        set: bool,
        /// `len + 1` ascending element offsets into `child`.
        offsets: Vec<u32>,
        /// The concatenated elements of every row's collection.
        child: Box<ColumnData>,
    },
    /// Anything else: nulls, nested items, or a mix of kinds.
    Mixed(Vec<Value>),
}

impl ColumnData {
    /// Builds the best-specialized column for `values`.
    pub fn from_values(values: Vec<Value>) -> ColumnData {
        if values.is_empty() {
            return ColumnData::Mixed(values);
        }
        if values.iter().all(|v| matches!(v, Value::Int(_))) {
            return ColumnData::Int(
                values
                    .iter()
                    .map(|v| match v {
                        Value::Int(i) => *i,
                        _ => unreachable!(),
                    })
                    .collect(),
            );
        }
        if values.iter().all(|v| matches!(v, Value::Double(_))) {
            return ColumnData::Double(
                values
                    .iter()
                    .map(|v| match v {
                        Value::Double(d) => *d,
                        _ => unreachable!(),
                    })
                    .collect(),
            );
        }
        if values.iter().all(|v| matches!(v, Value::Bool(_))) {
            return ColumnData::Bool(
                values
                    .iter()
                    .map(|v| match v {
                        Value::Bool(b) => *b,
                        _ => unreachable!(),
                    })
                    .collect(),
            );
        }
        if values.iter().all(|v| matches!(v, Value::Str(_))) {
            return ColumnData::Str(
                values
                    .into_iter()
                    .map(|v| match v {
                        Value::Str(s) => s,
                        _ => unreachable!(),
                    })
                    .collect(),
            );
        }
        let all_bags = values.iter().all(|v| matches!(v, Value::Bag(_)));
        let all_sets = !all_bags && values.iter().all(|v| matches!(v, Value::Set(_)));
        if all_bags || all_sets {
            let total: usize = values
                .iter()
                .map(|v| v.as_collection().map_or(0, <[Value]>::len))
                .sum();
            if let Ok(total) = u32::try_from(total) {
                let mut offsets = Vec::with_capacity(values.len() + 1);
                let mut child = Vec::with_capacity(total as usize);
                offsets.push(0u32);
                for v in values {
                    match v {
                        Value::Bag(vs) | Value::Set(vs) => child.extend(vs),
                        _ => unreachable!(),
                    }
                    offsets.push(child.len() as u32);
                }
                return ColumnData::List {
                    set: all_sets,
                    offsets,
                    child: Box::new(ColumnData::from_values(child)),
                };
            }
        }
        ColumnData::Mixed(values)
    }

    /// Consumes the column back into its exact [`Value`]s, in row order.
    /// The inverse of [`ColumnData::from_values`] without per-value deep
    /// clones: typed columns rewrap, list columns split their child by the
    /// stored offsets.
    pub fn into_values(self) -> Vec<Value> {
        match self {
            ColumnData::Int(v) => v.into_iter().map(Value::Int).collect(),
            ColumnData::Double(v) => v.into_iter().map(Value::Double).collect(),
            ColumnData::Bool(v) => v.into_iter().map(Value::Bool).collect(),
            ColumnData::Str(v) => v.into_iter().map(Value::Str).collect(),
            ColumnData::List {
                set,
                offsets,
                child,
            } => {
                let mut elems = child.into_values().into_iter();
                offsets
                    .windows(2)
                    .map(|w| {
                        let vs: Vec<Value> = elems.by_ref().take((w[1] - w[0]) as usize).collect();
                        if set {
                            Value::Set(vs)
                        } else {
                            Value::Bag(vs)
                        }
                    })
                    .collect()
            }
            ColumnData::Mixed(v) => v,
        }
    }

    /// Number of values in the column.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Double(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::List { offsets, .. } => offsets.len() - 1,
            ColumnData::Mixed(v) => v.len(),
        }
    }

    /// True if the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reconstructs the exact [`Value`] stored at `idx`.
    pub fn value(&self, idx: usize) -> Value {
        match self {
            ColumnData::Int(v) => Value::Int(v[idx]),
            ColumnData::Double(v) => Value::Double(v[idx]),
            ColumnData::Bool(v) => Value::Bool(v[idx]),
            ColumnData::Str(v) => Value::Str(Arc::clone(&v[idx])),
            ColumnData::List {
                set,
                offsets,
                child,
            } => {
                let lo = offsets[idx] as usize;
                let hi = offsets[idx + 1] as usize;
                let vs: Vec<Value> = (lo..hi).map(|j| child.value(j)).collect();
                if *set {
                    Value::Set(vs)
                } else {
                    Value::Bag(vs)
                }
            }
            ColumnData::Mixed(v) => v[idx].clone(),
        }
    }
}

/// One attribute column of a [`ColumnBatch`].
#[derive(Debug, Clone)]
pub struct Column {
    /// The interned attribute name this column stores.
    pub label: Label,
    /// Ascending indices of the rows that hold this attribute; `None` when
    /// the column is dense (present in every row).
    pub rows: Option<Vec<u32>>,
    /// The column's values, in row order.
    pub data: ColumnData,
}

/// A column-major batch of [`DataItem`]s. See the module docs for the
/// layout and the losslessness argument.
#[derive(Debug, Clone)]
pub struct ColumnBatch {
    len: usize,
    shapes: Vec<Vec<Label>>,
    /// Shape index per row; empty means every row has shape 0 (the
    /// uniform batches built by the dense constructors skip the per-row
    /// vector entirely).
    row_shapes: Vec<u32>,
    columns: Vec<Column>,
}

impl ColumnBatch {
    /// Transposes `items` into columns. Values move by shallow clone —
    /// strings and nested items bump an `Arc`; only collection spines are
    /// copied into offset+child form.
    pub fn from_items(items: &[DataItem]) -> ColumnBatch {
        struct Builder {
            values: Vec<Value>,
            rows: Vec<u32>,
        }
        let mut shapes: Vec<Vec<Label>> = Vec::new();
        let mut shape_index: HashMap<Vec<Label>, u32> = HashMap::new();
        let mut row_shapes = Vec::with_capacity(items.len());
        let mut order: Vec<Label> = Vec::new();
        let mut builders: HashMap<Label, Builder> = HashMap::new();
        for (row, item) in items.iter().enumerate() {
            let labels: Vec<Label> = item.entries().iter().map(|(l, _)| l.clone()).collect();
            let shape = *shape_index.entry(labels.clone()).or_insert_with(|| {
                shapes.push(labels);
                (shapes.len() - 1) as u32
            });
            row_shapes.push(shape);
            for (label, value) in item.entries() {
                let b = builders.entry(label.clone()).or_insert_with(|| {
                    order.push(label.clone());
                    Builder {
                        values: Vec::new(),
                        rows: Vec::new(),
                    }
                });
                b.values.push(value.clone());
                b.rows.push(row as u32);
            }
        }
        let columns = order
            .into_iter()
            .map(|label| {
                let b = builders.remove(&label).expect("builder for ordered label");
                let rows = (b.rows.len() != items.len()).then_some(b.rows);
                Column {
                    label,
                    rows,
                    data: ColumnData::from_values(b.values),
                }
            })
            .collect();
        ColumnBatch {
            len: items.len(),
            shapes,
            row_shapes,
            columns,
        }
    }

    /// Builds a batch from already-columnar output: every column is dense
    /// (present in all `len` rows) and every row shares the single shape
    /// given by `labels`. This is how vectorized select kernels assemble
    /// their projection results column-at-a-time.
    ///
    /// `labels` must be distinct and `cols` must align with `labels`, each
    /// holding exactly `len` values.
    pub fn from_dense_columns(
        len: usize,
        labels: Vec<Label>,
        cols: Vec<Vec<Value>>,
    ) -> ColumnBatch {
        debug_assert_eq!(labels.len(), cols.len());
        debug_assert!(cols.iter().all(|c| c.len() == len));
        debug_assert!(labels
            .iter()
            .enumerate()
            .all(|(i, l)| !labels[..i].contains(l)));
        let columns = labels
            .iter()
            .cloned()
            .zip(cols)
            .map(|(label, values)| Column {
                label,
                rows: None,
                data: ColumnData::from_values(values),
            })
            .collect();
        ColumnBatch {
            len,
            shapes: vec![labels],
            row_shapes: Vec::new(),
            columns,
        }
    }

    /// Builds a batch of dense [`ColumnData::Mixed`] columns without the
    /// type-specialization scans of [`ColumnBatch::from_dense_columns`].
    /// The right constructor for batches that flow *between* pipeline
    /// stages and are consumed within the same unit: specialization would
    /// cost several full passes per column and buy nothing before the
    /// batch is torn back down.
    ///
    /// `labels` must be distinct and `cols` must align with `labels`, each
    /// holding exactly `len` values.
    pub fn from_mixed_columns(
        len: usize,
        labels: Vec<Label>,
        cols: Vec<Vec<Value>>,
    ) -> ColumnBatch {
        debug_assert_eq!(labels.len(), cols.len());
        debug_assert!(cols.iter().all(|c| c.len() == len));
        debug_assert!(labels
            .iter()
            .enumerate()
            .all(|(i, l)| !labels[..i].contains(l)));
        let columns = labels
            .iter()
            .cloned()
            .zip(cols)
            .map(|(label, values)| Column {
                label,
                rows: None,
                data: ColumnData::Mixed(values),
            })
            .collect();
        ColumnBatch {
            len,
            shapes: vec![labels],
            row_shapes: Vec::new(),
            columns,
        }
    }

    /// Consumes an all-dense batch back into `(labels, columns)` with the
    /// exact row-order values — the inverse of
    /// [`ColumnBatch::from_mixed_columns`] (and of
    /// [`ColumnBatch::from_dense_columns`], modulo specialization).
    ///
    /// Panics if any column is sparse (missing in some rows): such a batch
    /// has no dense column form.
    pub fn into_mixed_columns(self) -> (Vec<Label>, Vec<Vec<Value>>) {
        let mut labels = Vec::with_capacity(self.columns.len());
        let mut cols = Vec::with_capacity(self.columns.len());
        for c in self.columns {
            assert!(c.rows.is_none(), "sparse column {} in dense batch", c.label);
            labels.push(c.label);
            cols.push(c.data.into_values());
        }
        (labels, cols)
    }

    /// The shape index of `row`.
    fn shape_of(&self, row: usize) -> usize {
        if self.row_shapes.is_empty() {
            0
        } else {
            self.row_shapes[row] as usize
        }
    }

    /// Consumes the batch into row-major items, reproducing the originals
    /// exactly like [`ColumnBatch::to_items`] but moving values out of the
    /// columns instead of cloning them.
    pub fn into_items(self) -> Vec<DataItem> {
        let ColumnBatch {
            len,
            shapes,
            row_shapes,
            columns,
        } = self;
        let labels: Vec<Label> = columns.iter().map(|c| c.label.clone()).collect();
        let mut iters: Vec<std::vec::IntoIter<Value>> = columns
            .into_iter()
            .map(|c| c.data.into_values().into_iter())
            .collect();
        // Uniform batch whose single shape lists the columns in column
        // order (what the dense constructors build): zip the columns
        // straight into rows, skipping the per-field label lookup.
        if shapes.len() == 1 && shapes[0] == labels {
            return (0..len)
                .map(|_| {
                    let fields = labels
                        .iter()
                        .zip(&mut iters)
                        .map(|(label, it)| (label.clone(), it.next().expect("column underrun")))
                        .collect();
                    DataItem::from_parts(fields)
                })
                .collect();
        }
        let index: HashMap<&Label, usize> =
            labels.iter().enumerate().map(|(i, l)| (l, i)).collect();
        let mut out = Vec::with_capacity(len);
        for row in 0..len {
            let shape_idx = if row_shapes.is_empty() {
                0
            } else {
                row_shapes[row] as usize
            };
            let shape = &shapes[shape_idx];
            let mut fields = Vec::with_capacity(shape.len());
            for label in shape {
                let value = iters[index[label]].next().expect("column underrun");
                fields.push((label.clone(), value));
            }
            out.push(DataItem::from_parts(fields));
        }
        out
    }

    /// Transposes the batch back into row-major items, reproducing the
    /// originals exactly (see module docs).
    pub fn to_items(&self) -> Vec<DataItem> {
        let index: HashMap<&Label, usize> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| (&c.label, i))
            .collect();
        let mut cursors = vec![0usize; self.columns.len()];
        let mut out = Vec::with_capacity(self.len);
        for row in 0..self.len {
            let shape = &self.shapes[self.shape_of(row)];
            let mut fields = Vec::with_capacity(shape.len());
            for label in shape {
                let col = index[label];
                let c = &self.columns[col];
                let pos = cursors[col];
                debug_assert!(c.rows.as_ref().is_none_or(|rs| rs[pos] == row as u32));
                fields.push((label.clone(), c.data.value(pos)));
                cursors[col] = pos + 1;
            }
            out.push(DataItem::from_parts(fields));
        }
        out
    }

    /// Number of rows in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The attribute columns, in first-seen label order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Looks up the column for `label`, if any row has that attribute.
    pub fn column(&self, label: &Label) -> Option<&Column> {
        self.columns.iter().find(|c| c.label == *label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(items: Vec<DataItem>) {
        let batch = ColumnBatch::from_items(&items);
        assert_eq!(batch.len(), items.len());
        let back = batch.to_items();
        assert_eq!(back, items);
        for (a, b) in items.iter().zip(&back) {
            assert_eq!(a.to_string(), b.to_string());
        }
        assert_eq!(batch.into_items(), items);
    }

    #[test]
    fn dense_columns_roundtrip_through_into_items() {
        let labels = vec![Label::new("n"), Label::new("s")];
        let cols = vec![
            vec![Value::Int(1), Value::Int(2)],
            vec![Value::str("a"), Value::str("b")],
        ];
        let batch = ColumnBatch::from_dense_columns(2, labels, cols);
        assert_eq!(
            batch.into_items(),
            vec![
                DataItem::from_fields([("n", Value::Int(1)), ("s", Value::str("a"))]),
                DataItem::from_fields([("n", Value::Int(2)), ("s", Value::str("b"))]),
            ]
        );
    }

    #[test]
    fn roundtrip_uniform_rows() {
        roundtrip(vec![
            DataItem::from_fields([("id", Value::Int(1)), ("name", Value::str("a"))]),
            DataItem::from_fields([("id", Value::Int(2)), ("name", Value::str("b"))]),
        ]);
    }

    #[test]
    fn roundtrip_missing_attributes_and_order() {
        roundtrip(vec![
            DataItem::from_fields([("a", Value::Int(1)), ("b", Value::str("x"))]),
            DataItem::from_fields([("b", Value::str("y"))]),
            // Different field order is a different shape and must survive.
            DataItem::from_fields([("b", Value::str("z")), ("a", Value::Int(3))]),
            DataItem::new(),
        ]);
    }

    #[test]
    fn roundtrip_nested_lists_and_items() {
        let mention = |id: i64| {
            Value::Item(DataItem::from_fields([
                ("id", Value::Int(id)),
                ("name", Value::str(format!("u{id}"))),
            ]))
        };
        roundtrip(vec![
            DataItem::from_fields([
                ("text", Value::str("hi")),
                ("mentions", Value::Bag(vec![mention(1), mention(2)])),
            ]),
            DataItem::from_fields([("text", Value::str("lo")), ("mentions", Value::Bag(vec![]))]),
        ]);
    }

    #[test]
    fn roundtrip_preserves_bag_vs_set_and_int_vs_double() {
        roundtrip(vec![
            DataItem::from_fields([("s", Value::Set(vec![Value::Int(1)])), ("n", Value::Int(1))]),
            DataItem::from_fields([("s", Value::Set(vec![Value::Int(2)])), ("n", Value::Int(2))]),
        ]);
        // Int(1) == Double(1.0) under Value::Eq; the variant must still
        // survive, so check it explicitly.
        let items = vec![
            DataItem::from_fields([("n", Value::Int(1))]),
            DataItem::from_fields([("n", Value::Double(1.0))]),
        ];
        let back = ColumnBatch::from_items(&items).to_items();
        assert!(matches!(back[0].get("n"), Some(Value::Int(1))));
        assert!(matches!(back[1].get("n"), Some(Value::Double(d)) if *d == 1.0));
    }

    #[test]
    fn roundtrip_nulls_and_mixed_kinds() {
        roundtrip(vec![
            DataItem::from_fields([("v", Value::Null)]),
            DataItem::from_fields([("v", Value::Int(2))]),
            DataItem::from_fields([("v", Value::str("three"))]),
        ]);
    }

    #[test]
    fn typed_columns_specialize() {
        let items = vec![
            DataItem::from_fields([("n", Value::Int(1)), ("s", Value::str("a"))]),
            DataItem::from_fields([("n", Value::Int(2)), ("s", Value::str("b"))]),
        ];
        let batch = ColumnBatch::from_items(&items);
        assert!(matches!(
            batch.column(&Label::new("n")).unwrap().data,
            ColumnData::Int(_)
        ));
        assert!(matches!(
            batch.column(&Label::new("s")).unwrap().data,
            ColumnData::Str(_)
        ));
        assert!(batch.column(&Label::new("n")).unwrap().rows.is_none());
    }

    #[test]
    fn list_columns_use_offsets() {
        let items = vec![
            DataItem::from_fields([("xs", Value::Bag(vec![Value::Int(1), Value::Int(2)]))]),
            DataItem::from_fields([("xs", Value::Bag(vec![]))]),
            DataItem::from_fields([("xs", Value::Bag(vec![Value::Int(3)]))]),
        ];
        let batch = ColumnBatch::from_items(&items);
        match &batch.column(&Label::new("xs")).unwrap().data {
            ColumnData::List {
                set,
                offsets,
                child,
            } => {
                assert!(!set);
                assert_eq!(offsets, &[0, 2, 2, 3]);
                assert!(matches!(**child, ColumnData::Int(_)));
            }
            other => panic!("expected list column, got {other:?}"),
        }
        roundtrip(items);
    }

    #[test]
    fn selection_vector_marks_rows() {
        let mut sel = SelectionVector::all(5);
        assert_eq!(sel.len(), 5);
        sel.retain(|_, row| row % 2 == 0);
        assert_eq!(sel.indices(), &[0, 2, 4]);
        assert_eq!(sel.density(5), 0.6);
        let mut positions = Vec::new();
        sel.retain(|pos, _| {
            positions.push(pos);
            true
        });
        assert_eq!(positions, [0, 1, 2]);
        assert!(SelectionVector::empty().is_empty());
    }
}
