//! Interned attribute labels.
//!
//! Attribute names repeat across every row of a dataset (`text`,
//! `user_mentions`, …), yet the engine used to carry each of them as an
//! owned `String` per item — so passing a row through an operator copied
//! every label. A [`Label`] is an `Arc<str>` handed out by a global symbol
//! table: constructing the same name twice yields two handles to the *same*
//! allocation, cloning is a reference-count bump, and equality is almost
//! always a pointer comparison.
//!
//! Labels intern on construction and are never evicted; the table is
//! bounded by the number of *distinct* attribute names, which is tiny
//! (schema-sized) for any real workload.

use std::borrow::Borrow;
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::{Arc, Mutex, OnceLock};

/// An interned attribute name. Cheap to clone, compare, and hash; ordered
/// and hashed by string content so containers behave exactly as with
/// `String` keys (and deterministically across runs).
#[derive(Clone)]
pub struct Label(Arc<str>);

fn table() -> &'static Mutex<HashSet<Arc<str>>> {
    static TABLE: OnceLock<Mutex<HashSet<Arc<str>>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashSet::new()))
}

impl Label {
    /// Interns `name`, returning the shared handle for it.
    pub fn new(name: &str) -> Self {
        let mut t = table().lock().unwrap();
        if let Some(existing) = t.get(name) {
            return Label(Arc::clone(existing));
        }
        let arc: Arc<str> = Arc::from(name);
        t.insert(Arc::clone(&arc));
        Label(arc)
    }

    /// The label text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The shared allocation backing this label. Interning makes equal
    /// labels share one allocation, so the address doubles as a cheap
    /// identity key (the codec's string table exploits this).
    pub fn as_arc(&self) -> &Arc<str> {
        &self.0
    }
}

impl Deref for Label {
    type Target = str;

    fn deref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for Label {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl PartialEq for Label {
    fn eq(&self, other: &Self) -> bool {
        // Interning makes equal labels pointer-equal; the content check
        // only runs for *distinct* names (and for handles that crossed a
        // process boundary, which cannot happen here).
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for Label {}

impl PartialEq<str> for Label {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for Label {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl PartialOrd for Label {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Label {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            return std::cmp::Ordering::Equal;
        }
        self.0.cmp(&other.0)
    }
}

impl Hash for Label {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Content hash, NOT pointer hash: partition assignment derives from
        // key hashes and must be identical across processes and runs.
        self.0.hash(state)
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.0, f)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&*self.0, f)
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        Label::new(s)
    }
}

impl From<&String> for Label {
    fn from(s: &String) -> Self {
        Label::new(s)
    }
}

impl From<String> for Label {
    fn from(s: String) -> Self {
        Label::new(&s)
    }
}

impl From<&Label> for Label {
    fn from(l: &Label) -> Self {
        l.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_shares_allocations() {
        let a = Label::new("text");
        let b = Label::from("text".to_string());
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_names_differ() {
        assert_ne!(Label::new("a"), Label::new("b"));
        assert!(Label::new("a") < Label::new("b"));
    }

    #[test]
    fn compares_with_str() {
        let l = Label::new("name");
        assert_eq!(l, "name");
        assert_eq!(l.as_str(), "name");
        assert_eq!(l.len(), 4); // Deref<Target = str>
    }

    #[test]
    fn hash_matches_str_hash() {
        use std::collections::hash_map::DefaultHasher;
        fn h(x: &(impl Hash + ?Sized)) -> u64 {
            let mut s = DefaultHasher::new();
            x.hash(&mut s);
            s.finish()
        }
        // Borrow<str> requires Hash agreement with str.
        assert_eq!(h(&Label::new("k")), h("k"));
    }
}
