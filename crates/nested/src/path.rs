//! Access paths (Def. 4.3) and schema-level paths with `[pos]` placeholders
//! (Sec. 5.1).
//!
//! A path navigates from a context data item into nested data:
//! `p = d.p'`, `p' = x | x.p'`, `x = a | a[i]` — an attribute access, or a
//! positional access into the collection stored at an attribute. Positions
//! are **1-based**, following the paper (`tweets[2].text` points to the
//! first `Hello World` in the running example).
//!
//! The lightweight capture records paths on a *schema level*: positions are
//! replaced by the placeholder step `[pos]` ([`Step::AnyPos`]).

use std::fmt;
use std::str::FromStr;

use crate::value::{DataItem, Value};

/// One navigation step of an access path.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Step {
    /// Attribute access `a`.
    Attr(String),
    /// Positional access `[i]` into the collection reached so far (1-based).
    Pos(u32),
    /// Schema-level position placeholder `[pos]`.
    AnyPos,
}

impl Step {
    /// Builds an attribute step.
    pub fn attr(name: impl Into<String>) -> Self {
        Step::Attr(name.into())
    }
}

/// An access path: a sequence of [`Step`]s relative to a context data item.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Path {
    steps: Vec<Step>,
}

impl Path {
    /// The empty path (refers to the context item itself).
    pub fn root() -> Self {
        Self::default()
    }

    /// Builds a path from steps.
    pub fn new(steps: impl IntoIterator<Item = Step>) -> Self {
        Path {
            steps: steps.into_iter().collect(),
        }
    }

    /// Parses a dotted path such as `user_mentions[1].id_str` or the
    /// schema-level `tweets.[pos].text`.
    ///
    /// # Panics
    /// Panics on syntax errors; use the [`FromStr`] impl for fallible
    /// parsing.
    pub fn parse(s: &str) -> Self {
        s.parse().expect("invalid path syntax")
    }

    /// Single-attribute path.
    pub fn attr(name: impl Into<String>) -> Self {
        Path::new([Step::attr(name)])
    }

    /// Steps of this path.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True for the empty (context) path.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Appends a step, returning the extended path.
    pub fn child(&self, step: Step) -> Path {
        let mut steps = self.steps.clone();
        steps.push(step);
        Path { steps }
    }

    /// Concatenates two paths.
    pub fn join(&self, suffix: &Path) -> Path {
        let mut steps = self.steps.clone();
        steps.extend(suffix.steps.iter().cloned());
        Path { steps }
    }

    /// First step, if any.
    pub fn head(&self) -> Option<&Step> {
        self.steps.first()
    }

    /// Path without its first step.
    pub fn tail(&self) -> Path {
        Path {
            steps: self.steps.get(1..).unwrap_or_default().to_vec(),
        }
    }

    /// True if `self` starts with `prefix`, treating `[pos]` in the prefix
    /// as matching any concrete position (and vice versa).
    pub fn starts_with(&self, prefix: &Path) -> bool {
        self.steps.len() >= prefix.steps.len()
            && prefix
                .steps
                .iter()
                .zip(&self.steps)
                .all(|(p, s)| steps_match(p, s))
    }

    /// If `self` starts with `prefix`, returns the remaining suffix.
    pub fn strip_prefix(&self, prefix: &Path) -> Option<Path> {
        self.starts_with(prefix).then(|| Path {
            steps: self.steps[prefix.steps.len()..].to_vec(),
        })
    }

    /// Rewrites `self` by replacing prefix `from` with `to`
    /// (the core of the `manipulatePath` backtracing method).
    pub fn replace_prefix(&self, from: &Path, to: &Path) -> Option<Path> {
        self.strip_prefix(from).map(|suffix| to.join(&suffix))
    }

    /// Schema-level version of the path: every concrete position becomes
    /// the `[pos]` placeholder.
    pub fn to_schema_level(&self) -> Path {
        Path {
            steps: self
                .steps
                .iter()
                .map(|s| match s {
                    Step::Pos(_) => Step::AnyPos,
                    other => other.clone(),
                })
                .collect(),
        }
    }

    /// True if the path contains a `[pos]` placeholder.
    pub fn has_placeholder(&self) -> bool {
        self.steps.iter().any(|s| matches!(s, Step::AnyPos))
    }

    /// Replaces the *first* `[pos]` placeholder with a concrete position
    /// (used by `backtraceAggregation`, Alg. 4 l. 7).
    pub fn fill_placeholder(&self, pos: u32) -> Path {
        let mut filled = false;
        Path {
            steps: self
                .steps
                .iter()
                .map(|s| {
                    if !filled && matches!(s, Step::AnyPos) {
                        filled = true;
                        Step::Pos(pos)
                    } else {
                        s.clone()
                    }
                })
                .collect(),
        }
    }

    /// Evaluates the path against a context item, returning the referenced
    /// value. `[pos]` placeholders cannot be evaluated and yield `None`.
    pub fn eval<'a>(&self, item: &'a DataItem) -> Option<&'a Value> {
        let mut current: Option<&Value> = None;
        for step in &self.steps {
            let next = match step {
                Step::Attr(name) => match current {
                    None => item.get(name),
                    Some(Value::Item(d)) => d.get(name),
                    _ => None,
                },
                Step::Pos(i) => match current {
                    Some(Value::Bag(vs)) | Some(Value::Set(vs)) => {
                        (*i as usize).checked_sub(1).and_then(|idx| vs.get(idx))
                    }
                    _ => None,
                },
                Step::AnyPos => None,
            };
            current = Some(next?);
        }
        current
    }

    /// Evaluates against a context item, expanding each `[pos]`/collection
    /// traversal to every element; returns all matching values. This is the
    /// evaluation used when a schema-level path is applied to data.
    pub fn eval_all<'a>(&self, item: &'a DataItem) -> Vec<&'a Value> {
        fn go<'a>(value: &'a Value, steps: &[Step], out: &mut Vec<&'a Value>) {
            let Some((step, rest)) = steps.split_first() else {
                out.push(value);
                return;
            };
            match step {
                Step::Attr(name) => {
                    if let Value::Item(d) = value {
                        if let Some(v) = d.get(name) {
                            go(v, rest, out);
                        }
                    }
                }
                Step::Pos(i) => {
                    if let Value::Bag(vs) | Value::Set(vs) = value {
                        if let Some(v) = (*i as usize).checked_sub(1).and_then(|idx| vs.get(idx)) {
                            go(v, rest, out);
                        }
                    }
                }
                Step::AnyPos => {
                    if let Value::Bag(vs) | Value::Set(vs) = value {
                        for v in vs {
                            go(v, rest, out);
                        }
                    }
                }
            }
        }
        // The context is a data item, so a non-empty path must begin with an
        // attribute step; inline it to avoid wrapping `item` in a Value.
        let mut out = Vec::new();
        let Some((first, rest)) = self.steps.split_first() else {
            return out;
        };
        if let Step::Attr(name) = first {
            if let Some(v) = item.get(name) {
                go(v, rest, &mut out);
            }
        }
        out
    }

    /// Enumerates the full path set `PS_d` of a data item: every path that
    /// exists in the context of `item`, including positional paths into
    /// collections (Def. 4.3).
    pub fn path_set(item: &DataItem) -> Vec<Path> {
        fn go(value: &Value, prefix: &Path, out: &mut Vec<Path>) {
            match value {
                Value::Item(d) => {
                    for (name, v) in d.fields() {
                        let p = prefix.child(Step::attr(name));
                        out.push(p.clone());
                        go(v, &p, out);
                    }
                }
                Value::Bag(vs) | Value::Set(vs) => {
                    for (idx, v) in vs.iter().enumerate() {
                        let p = prefix.child(Step::Pos(idx as u32 + 1));
                        out.push(p.clone());
                        go(v, &p, out);
                    }
                }
                _ => {}
            }
        }
        let mut out = Vec::new();
        for (name, v) in item.fields() {
            let p = Path::attr(name);
            out.push(p.clone());
            go(v, &p, &mut out);
        }
        out
    }
}

fn steps_match(a: &Step, b: &Step) -> bool {
    match (a, b) {
        (Step::Attr(x), Step::Attr(y)) => x == y,
        (Step::Pos(x), Step::Pos(y)) => x == y,
        (Step::AnyPos, Step::Pos(_)) | (Step::Pos(_), Step::AnyPos) => true,
        (Step::AnyPos, Step::AnyPos) => true,
        _ => false,
    }
}

/// Error produced when parsing a malformed path string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathParseError(pub String);

impl fmt::Display for PathParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid path: {}", self.0)
    }
}

impl std::error::Error for PathParseError {}

impl FromStr for Path {
    type Err = PathParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut steps = Vec::new();
        if s.is_empty() {
            return Ok(Path::root());
        }
        for segment in s.split('.') {
            if segment.is_empty() {
                return Err(PathParseError(format!("empty segment in `{s}`")));
            }
            // A segment is `name`, `name[i]`, `name[pos]`, `[i]`, or `[pos]`.
            let mut rest = segment;
            if !rest.starts_with('[') {
                let end = rest.find('[').unwrap_or(rest.len());
                let (name, tail) = rest.split_at(end);
                steps.push(Step::attr(name));
                rest = tail;
            }
            while !rest.is_empty() {
                if !rest.starts_with('[') {
                    return Err(PathParseError(format!("expected `[` in `{segment}`")));
                }
                let close = rest
                    .find(']')
                    .ok_or_else(|| PathParseError(format!("missing `]` in `{segment}`")))?;
                let idx = &rest[1..close];
                if idx == "pos" {
                    steps.push(Step::AnyPos);
                } else {
                    let i: u32 = idx
                        .parse()
                        .map_err(|_| PathParseError(format!("bad index `{idx}`")))?;
                    if i == 0 {
                        return Err(PathParseError("positions are 1-based".into()));
                    }
                    steps.push(Step::Pos(i));
                }
                rest = &rest[close + 1..];
            }
        }
        Ok(Path { steps })
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for step in &self.steps {
            match step {
                Step::Attr(name) => {
                    if !first {
                        write!(f, ".")?;
                    }
                    write!(f, "{name}")?;
                }
                Step::Pos(i) => write!(f, "[{i}]")?,
                Step::AnyPos => write!(f, "[pos]")?,
            }
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataItem {
        DataItem::from_fields([
            ("text", Value::str("Hello @ls @jm @ls")),
            (
                "user",
                Value::Item(DataItem::from_fields([
                    ("id_str", Value::str("lp")),
                    ("name", Value::str("Lisa Paul")),
                ])),
            ),
            (
                "user_mentions",
                Value::Bag(vec![
                    Value::Item(DataItem::from_fields([("id_str", Value::str("ls"))])),
                    Value::Item(DataItem::from_fields([("id_str", Value::str("jm"))])),
                ]),
            ),
            ("retweet_cnt", Value::Int(0)),
        ])
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in [
            "user_mentions[1].id_str",
            "user.name",
            "tweets[pos].text",
            "a[2][3].b",
            "text",
        ] {
            let p = Path::parse(s);
            assert_eq!(p.to_string(), s, "roundtrip of {s}");
        }
    }

    #[test]
    fn parse_errors() {
        assert!("a..b".parse::<Path>().is_err());
        assert!("a[".parse::<Path>().is_err());
        assert!("a[x]".parse::<Path>().is_err());
        assert!("a[0]".parse::<Path>().is_err());
    }

    #[test]
    fn eval_navigates_one_based() {
        let d = sample();
        assert_eq!(Path::parse("user.id_str").eval(&d), Some(&Value::str("lp")));
        assert_eq!(
            Path::parse("user_mentions[2].id_str").eval(&d),
            Some(&Value::str("jm"))
        );
        assert_eq!(Path::parse("user_mentions[3]").eval(&d), None);
        assert_eq!(Path::parse("nope").eval(&d), None);
    }

    #[test]
    fn eval_all_expands_placeholders() {
        let d = sample();
        let vs = Path::parse("user_mentions.[pos].id_str").eval_all(&d);
        assert_eq!(vs, [&Value::str("ls"), &Value::str("jm")]);
    }

    #[test]
    fn prefix_and_replacement() {
        let p = Path::parse("user_mentions[2].id_str");
        let prefix = Path::parse("user_mentions.[pos]");
        assert!(p.starts_with(&prefix));
        let rewritten = p.replace_prefix(&prefix, &Path::attr("m_user")).unwrap();
        assert_eq!(rewritten, Path::parse("m_user.id_str"));
    }

    #[test]
    fn schema_level_and_fill() {
        let p = Path::parse("tweets[2].text");
        assert_eq!(p.to_schema_level(), Path::parse("tweets.[pos].text"));
        assert_eq!(
            Path::parse("tweets.[pos].text").fill_placeholder(2),
            Path::parse("tweets[2].text")
        );
    }

    #[test]
    fn path_set_enumerates_all() {
        let d = DataItem::from_fields([
            ("a", Value::Int(1)),
            (
                "b",
                Value::Bag(vec![Value::Item(DataItem::from_fields([(
                    "c",
                    Value::Int(2),
                )]))]),
            ),
        ]);
        let ps: Vec<String> = Path::path_set(&d).iter().map(|p| p.to_string()).collect();
        assert_eq!(ps, ["a", "b", "b[1]", "b[1].c"]);
    }

    #[test]
    fn strip_prefix_with_placeholder_match() {
        let p = Path::parse("user_mentions[1]");
        let sp = p.strip_prefix(&Path::parse("user_mentions.[pos]")).unwrap();
        assert!(sp.is_empty());
    }
}
