//! Recursive nested types (Tab. 4) with inference, conformance checking,
//! and unification for `union`.

use std::fmt;

use crate::path::{Path, Step};
use crate::value::{DataItem, Value};

/// A named, typed attribute inside an item type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Attribute label, unique within its item type.
    pub name: String,
    /// Attribute type.
    pub ty: DataType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Field {
            name: name.into(),
            ty,
        }
    }
}

/// The type `τ(·)` of a nested value (Tab. 4).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Type of `Value::Null`; unifies with anything.
    Null,
    /// Boolean constant type.
    Bool,
    /// Integer constant type.
    Int,
    /// Double constant type.
    Double,
    /// String constant type.
    Str,
    /// Complex item type `⟨a1: τ1, …, an: τn⟩`.
    Item(Vec<Field>),
    /// Bag type `{{τ}}` — ordered, duplicates allowed.
    Bag(Box<DataType>),
    /// Set type `{τ}` — no duplicates.
    Set(Box<DataType>),
}

impl DataType {
    /// Item type builder.
    pub fn item(fields: impl IntoIterator<Item = (impl Into<String>, DataType)>) -> Self {
        DataType::Item(fields.into_iter().map(|(n, t)| Field::new(n, t)).collect())
    }

    /// Bag type builder.
    pub fn bag(elem: DataType) -> Self {
        DataType::Bag(Box::new(elem))
    }

    /// Set type builder.
    pub fn set(elem: DataType) -> Self {
        DataType::Set(Box::new(elem))
    }

    /// Infers the type of a value. Collections infer their element type by
    /// unifying all elements (an empty collection has `Null` elements).
    pub fn of(value: &Value) -> DataType {
        match value {
            Value::Null => DataType::Null,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Double(_) => DataType::Double,
            Value::Str(_) => DataType::Str,
            Value::Item(d) => DataType::of_item(d),
            Value::Bag(vs) => DataType::bag(Self::of_elements(vs)),
            Value::Set(vs) => DataType::set(Self::of_elements(vs)),
        }
    }

    /// Infers the item type of a data item.
    pub fn of_item(item: &DataItem) -> DataType {
        DataType::Item(
            item.fields()
                .map(|(n, v)| Field::new(n, DataType::of(v)))
                .collect(),
        )
    }

    fn of_elements(vs: &[Value]) -> DataType {
        vs.iter()
            .map(DataType::of)
            .try_fold(DataType::Null, |acc, t| acc.unify(&t))
            .unwrap_or(DataType::Null)
    }

    /// Unifies two types, as required by the `union` precondition
    /// `τ(I1) = τ(I2)`. `Null` unifies with anything; `Int` widens to
    /// `Double`; item types unify field-wise when labels agree.
    pub fn unify(&self, other: &DataType) -> Option<DataType> {
        use DataType::*;
        match (self, other) {
            (Null, t) | (t, Null) => Some(t.clone()),
            (a, b) if a == b => Some(a.clone()),
            (Int, Double) | (Double, Int) => Some(Double),
            (Item(fa), Item(fb)) => {
                if fa.len() != fb.len() {
                    return None;
                }
                let fields = fa
                    .iter()
                    .zip(fb)
                    .map(|(x, y)| {
                        (x.name == y.name)
                            .then(|| x.ty.unify(&y.ty).map(|t| Field::new(&x.name, t)))
                            .flatten()
                    })
                    .collect::<Option<Vec<_>>>()?;
                Some(Item(fields))
            }
            (Bag(a), Bag(b)) => Some(DataType::bag(a.unify(b)?)),
            (Set(a), Set(b)) => Some(DataType::set(a.unify(b)?)),
            _ => None,
        }
    }

    /// Checks that `value` conforms to this type (treating `Null` values as
    /// conforming to any type).
    pub fn conforms(&self, value: &Value) -> bool {
        match (self, value) {
            (_, Value::Null) | (DataType::Null, _) => true,
            (DataType::Bool, Value::Bool(_)) => true,
            (DataType::Int, Value::Int(_)) => true,
            (DataType::Double, Value::Double(_) | Value::Int(_)) => true,
            (DataType::Str, Value::Str(_)) => true,
            (DataType::Item(fields), Value::Item(d)) => {
                d.len() == fields.len()
                    && fields
                        .iter()
                        .zip(d.fields())
                        .all(|(f, (n, v))| f.name == n && f.ty.conforms(v))
            }
            (DataType::Bag(t), Value::Bag(vs)) | (DataType::Set(t), Value::Set(vs)) => {
                vs.iter().all(|v| t.conforms(v))
            }
            _ => false,
        }
    }

    /// Fields of an item type, or `None` for other kinds.
    pub fn fields(&self) -> Option<&[Field]> {
        match self {
            DataType::Item(fs) => Some(fs),
            _ => None,
        }
    }

    /// Looks up the type of a field by name (item types only).
    pub fn field(&self, name: &str) -> Option<&DataType> {
        self.fields()?
            .iter()
            .find_map(|f| (f.name == name).then_some(&f.ty))
    }

    /// Element type of a bag or set.
    pub fn element(&self) -> Option<&DataType> {
        match self {
            DataType::Bag(t) | DataType::Set(t) => Some(t),
            _ => None,
        }
    }

    /// True for bag/set types (the `flatten` precondition
    /// `τ(a_col) ⇒ {{}} ∨ τ(a_col) ⇒ {}`).
    pub fn is_collection(&self) -> bool {
        matches!(self, DataType::Bag(_) | DataType::Set(_))
    }

    /// Resolves a (schema-level) path against this type: attribute steps
    /// look into item fields, position steps and `[pos]` step into
    /// collection elements. `Null` acts as the unknown type (inferred for
    /// empty or non-unifiable collections) and resolves any step to `Null`.
    pub fn resolve(&self, path: &Path) -> Option<&DataType> {
        let mut current = self;
        for step in path.steps() {
            if matches!(current, DataType::Null) {
                return Some(&DataType::Null);
            }
            current = match step {
                Step::Attr(name) => current.field(name)?,
                Step::Pos(_) | Step::AnyPos => current.element()?,
            };
        }
        Some(current)
    }

    /// Enumerates every schema-level path of this type (attributes descend
    /// into nested items; collections contribute a `[pos]` step).
    pub fn schema_paths(&self) -> Vec<Path> {
        fn go(ty: &DataType, prefix: &Path, out: &mut Vec<Path>) {
            match ty {
                DataType::Item(fields) => {
                    for f in fields {
                        let p = prefix.child(Step::attr(&f.name));
                        out.push(p.clone());
                        go(&f.ty, &p, out);
                    }
                }
                DataType::Bag(t) | DataType::Set(t) => {
                    let p = prefix.child(Step::AnyPos);
                    go(t, &p, out);
                }
                _ => {}
            }
        }
        let mut out = Vec::new();
        go(self, &Path::root(), &mut out);
        out
    }

    /// Enumerates every schema-level path together with the type it
    /// resolves to — the path pool that schema-aware generators (the
    /// differential oracle's pipeline fuzzer) draw expressions from.
    pub fn typed_paths(&self) -> Vec<(Path, DataType)> {
        self.schema_paths()
            .into_iter()
            .filter_map(|p| {
                let ty = self.resolve(&p)?.clone();
                Some((p, ty))
            })
            .collect()
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Null => write!(f, "Null"),
            DataType::Bool => write!(f, "Bool"),
            DataType::Int => write!(f, "Int"),
            DataType::Double => write!(f, "Double"),
            DataType::Str => write!(f, "Str"),
            DataType::Item(fields) => {
                write!(f, "⟨")?;
                for (i, fl) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}: {}", fl.name, fl.ty)?;
                }
                write!(f, "⟩")
            }
            DataType::Bag(t) => write!(f, "{{{{{t}}}}}"),
            DataType::Set(t) => write!(f, "{{{t}}}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tweet_type() -> DataType {
        DataType::item([
            ("text", DataType::Str),
            (
                "user",
                DataType::item([("id_str", DataType::Str), ("name", DataType::Str)]),
            ),
            (
                "user_mentions",
                DataType::bag(DataType::item([("id_str", DataType::Str)])),
            ),
            ("retweet_cnt", DataType::Int),
        ])
    }

    #[test]
    fn infer_matches_paper_result_type() {
        // Result type of Tab. 2:
        // {{⟨user: ⟨id_str, name⟩, tweets: {{⟨text⟩}}⟩}}
        let item = DataItem::from_fields([
            (
                "user",
                Value::Item(DataItem::from_fields([
                    ("id_str", Value::str("ls")),
                    ("name", Value::str("Lauren Smith")),
                ])),
            ),
            (
                "tweets",
                Value::Bag(vec![Value::Item(DataItem::from_fields([(
                    "text",
                    Value::str("Hello"),
                )]))]),
            ),
        ]);
        let ty = DataType::of_item(&item);
        assert_eq!(
            ty.to_string(),
            "⟨user: ⟨id_str: Str, name: Str⟩, tweets: {{⟨text: Str⟩}}⟩"
        );
        assert!(ty.conforms(&Value::Item(item)));
    }

    #[test]
    fn unify_widens_and_handles_null() {
        assert_eq!(
            DataType::Int.unify(&DataType::Double),
            Some(DataType::Double)
        );
        assert_eq!(DataType::Null.unify(&DataType::Str), Some(DataType::Str));
        assert_eq!(DataType::Int.unify(&DataType::Str), None);
        let a = DataType::bag(DataType::Null);
        let b = DataType::bag(DataType::Int);
        assert_eq!(a.unify(&b), Some(DataType::bag(DataType::Int)));
    }

    #[test]
    fn unify_items_fieldwise() {
        let a = DataType::item([("x", DataType::Int)]);
        let b = DataType::item([("x", DataType::Double)]);
        assert_eq!(a.unify(&b), Some(DataType::item([("x", DataType::Double)])));
        let c = DataType::item([("y", DataType::Int)]);
        assert_eq!(a.unify(&c), None);
    }

    #[test]
    fn resolve_paths() {
        let ty = tweet_type();
        assert_eq!(ty.resolve(&Path::parse("user.name")), Some(&DataType::Str));
        assert_eq!(
            ty.resolve(&Path::parse("user_mentions.[pos].id_str")),
            Some(&DataType::Str)
        );
        assert_eq!(
            ty.resolve(&Path::parse("user_mentions[2].id_str")),
            Some(&DataType::Str)
        );
        assert_eq!(ty.resolve(&Path::parse("user.bogus")), None);
        assert!(ty
            .resolve(&Path::parse("user_mentions"))
            .unwrap()
            .is_collection());
    }

    #[test]
    fn schema_paths_enumeration() {
        let ty = tweet_type();
        let paths: Vec<String> = ty.schema_paths().iter().map(|p| p.to_string()).collect();
        assert_eq!(
            paths,
            [
                "text",
                "user",
                "user.id_str",
                "user.name",
                "user_mentions",
                "user_mentions[pos].id_str",
                "retweet_cnt"
            ]
        );
    }

    #[test]
    fn typed_paths_resolve_types() {
        let ty = tweet_type();
        let typed = ty.typed_paths();
        assert_eq!(typed.len(), ty.schema_paths().len());
        let find = |s: &str| {
            typed
                .iter()
                .find(|(p, _)| p.to_string() == s)
                .map(|(_, t)| t)
        };
        assert_eq!(find("user.name"), Some(&DataType::Str));
        assert_eq!(find("retweet_cnt"), Some(&DataType::Int));
        assert!(find("user_mentions").unwrap().is_collection());
    }

    #[test]
    fn conforms_rejects_shape_mismatch() {
        let ty = tweet_type();
        let bad = Value::Item(DataItem::from_fields([("text", Value::Int(7))]));
        assert!(!ty.conforms(&bad));
    }

    #[test]
    fn empty_collection_infers_null_element() {
        assert_eq!(
            DataType::of(&Value::Bag(vec![])),
            DataType::bag(DataType::Null)
        );
    }
}
