//! Nested values and data items (Def. 4.1 of the paper).
//!
//! A [`Value`] is either a constant, a [`DataItem`] (an ordered list of
//! uniquely named attribute/value pairs), an ordered *bag* (list with
//! duplicates), or a *set* (list without duplicates). Datasets processed by
//! the dataflow engine are lists of top-level [`DataItem`]s.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::label::Label;

/// A nested value: constant, data item, bag, or set.
///
/// Bags keep insertion order and duplicates; sets keep insertion order of
/// first occurrences and reject duplicates (see [`Value::set_from`]).
///
/// `Double` values compare and hash via [`f64::total_cmp`] / bit patterns so
/// that `Value` can serve as a grouping key.
#[derive(Debug, Clone)]
pub enum Value {
    /// Absent / undefined value (e.g. the dangling side of a union).
    Null,
    /// Boolean constant.
    Bool(bool),
    /// 64-bit integer constant.
    Int(i64),
    /// 64-bit floating point constant.
    Double(f64),
    /// String constant. Shared so that cloning a value — which the engine
    /// does once per operator a row passes through — never copies the text.
    Str(Arc<str>),
    /// A complex data item with named attributes.
    Item(DataItem),
    /// An ordered collection that may contain duplicates (`{{ … }}`).
    Bag(Vec<Value>),
    /// An ordered collection without duplicates (`{ … }`).
    Set(Vec<Value>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// Builds a set, dropping duplicates while keeping first-occurrence order.
    pub fn set_from(values: impl IntoIterator<Item = Value>) -> Self {
        let mut out: Vec<Value> = Vec::new();
        for v in values {
            if !out.contains(&v) {
                out.push(v);
            }
        }
        Value::Set(out)
    }

    /// Returns the contained data item, if this is an `Item`.
    pub fn as_item(&self) -> Option<&DataItem> {
        match self {
            Value::Item(d) => Some(d),
            _ => None,
        }
    }

    /// Mutable variant of [`Value::as_item`].
    pub fn as_item_mut(&mut self) -> Option<&mut DataItem> {
        match self {
            Value::Item(d) => Some(d),
            _ => None,
        }
    }

    /// Returns the elements if this is a bag or a set.
    pub fn as_collection(&self) -> Option<&[Value]> {
        match self {
            Value::Bag(vs) | Value::Set(vs) => Some(vs),
            _ => None,
        }
    }

    /// Returns the contained integer, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the contained double, widening integers.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(d) => Some(*d),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the contained string slice, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the contained boolean, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True if the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Number of nested *value annotations* a Lipstick-style system would
    /// need: one per constant, item, and collection element, recursively.
    /// (Used by the baseline comparison of Sec. 2: 35 vs 5 annotations.)
    pub fn annotation_count(&self) -> usize {
        match self {
            Value::Null | Value::Bool(_) | Value::Int(_) | Value::Double(_) | Value::Str(_) => 1,
            Value::Item(d) => 1 + d.fields().map(|(_, v)| v.annotation_count()).sum::<usize>(),
            Value::Bag(vs) | Value::Set(vs) => {
                1 + vs.iter().map(Value::annotation_count).sum::<usize>()
            }
        }
    }

    /// Approximate in-memory footprint in bytes (used for provenance-size
    /// accounting in the Fig. 8 experiments).
    pub fn deep_size(&self) -> usize {
        let base = std::mem::size_of::<Value>();
        match self {
            Value::Str(s) => base + s.len(),
            Value::Item(d) => {
                base + d
                    .fields()
                    .map(|(n, v)| n.len() + v.deep_size())
                    .sum::<usize>()
            }
            Value::Bag(vs) | Value::Set(vs) => {
                base + vs.iter().map(Value::deep_size).sum::<usize>()
            }
            _ => base,
        }
    }

    fn variant_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Double(_) => 3,
            Value::Str(_) => 4,
            Value::Item(_) => 5,
            Value::Bag(_) => 6,
            Value::Set(_) => 7,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            // Numeric cross-type comparison so Int(1) == Double(1.0) in
            // predicates; ranks only break ties between distinct kinds.
            (Int(a), Double(b)) => (*a as f64).total_cmp(b),
            (Double(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Item(a), Item(b)) => a.cmp(b),
            (Bag(a), Bag(b)) | (Set(a), Set(b)) => a.cmp(b),
            (a, b) => a.variant_rank().cmp(&b.variant_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // Int and Double hash identically for integral values, matching
            // the Ord impl above (Int(1) == Double(1.0)).
            Value::Int(i) => {
                state.write_u8(2);
                (*i as f64).to_bits().hash(state);
            }
            Value::Double(d) => {
                state.write_u8(2);
                d.to_bits().hash(state);
            }
            Value::Str(s) => {
                state.write_u8(4);
                s.hash(state);
            }
            Value::Item(d) => {
                state.write_u8(5);
                d.hash(state);
            }
            Value::Bag(vs) => {
                state.write_u8(6);
                vs.hash(state);
            }
            Value::Set(vs) => {
                state.write_u8(7);
                vs.hash(state);
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v))
    }
}
impl From<DataItem> for Value {
    fn from(v: DataItem) -> Self {
        Value::Item(v)
    }
}

/// A complex data item: an ordered list of `attribute: value` pairs with
/// unique attribute names (Def. 4.1).
///
/// The field list lives behind an [`Arc`]: cloning an item — the dominant
/// operation on the engine's pass-through hot path — bumps one reference
/// count instead of copying every label and value. Mutators copy-on-write
/// via [`Arc::make_mut`], so a uniquely-owned item mutates in place and a
/// shared one is detached first.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DataItem {
    fields: Arc<Vec<(Label, Value)>>,
}

impl DataItem {
    /// Creates an empty data item.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a data item from `(name, value)` pairs.
    ///
    /// # Panics
    /// Panics if an attribute name occurs twice; attribute labels must be
    /// unique within a data item.
    pub fn from_fields(fields: impl IntoIterator<Item = (impl Into<Label>, Value)>) -> Self {
        let mut item = Self::new();
        for (name, value) in fields {
            item.push(name, value);
        }
        item
    }

    /// Wraps pre-built fields without the per-push duplicate scan of
    /// [`DataItem::push`]. Callers must guarantee unique labels (checked in
    /// debug builds); the columnar kernels use this when the label set was
    /// validated once at plan time instead of once per row.
    pub fn from_parts(fields: Vec<(Label, Value)>) -> Self {
        debug_assert!(
            fields
                .iter()
                .enumerate()
                .all(|(i, (n, _))| fields[..i].iter().all(|(m, _)| m != n)),
            "duplicate attribute name in data item parts"
        );
        DataItem {
            fields: Arc::new(fields),
        }
    }

    /// The raw `(label, value)` pairs in attribute order. Unlike
    /// [`DataItem::fields`] this exposes the interned [`Label`]s, so
    /// scanning code can compare them by pointer.
    pub fn entries(&self) -> &[(Label, Value)] {
        &self.fields
    }

    /// Appends an attribute.
    ///
    /// # Panics
    /// Panics if the attribute name already exists.
    pub fn push(&mut self, name: impl Into<Label>, value: Value) {
        let name = name.into();
        assert!(
            self.get(&name).is_none(),
            "duplicate attribute name `{name}` in data item"
        );
        Arc::make_mut(&mut self.fields).push((name, value));
    }

    /// Builder-style variant of [`DataItem::push`].
    pub fn with(mut self, name: impl Into<Label>, value: Value) -> Self {
        self.push(name, value);
        self
    }

    /// Looks up an attribute value by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields
            .iter()
            .find_map(|(n, v)| (*n == *name).then_some(v))
    }

    /// Mutable lookup by attribute name.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Value> {
        Arc::make_mut(&mut self.fields)
            .iter_mut()
            .find_map(|(n, v)| (*n == *name).then_some(v))
    }

    /// Replaces the value of `name`, or appends it if absent.
    pub fn set(&mut self, name: impl Into<Label>, value: Value) {
        let name = name.into();
        if let Some(slot) = self.get_mut(&name) {
            *slot = value;
        } else {
            Arc::make_mut(&mut self.fields).push((name, value));
        }
    }

    /// Removes an attribute, returning its value.
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        let idx = self.fields.iter().position(|(n, _)| *n == *name)?;
        Some(Arc::make_mut(&mut self.fields).remove(idx).1)
    }

    /// Iterates over `(name, value)` pairs in attribute order.
    pub fn fields(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Attribute names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|(n, _)| n.as_str())
    }

    /// Number of top-level attributes.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the item has no attributes.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Merges `other` into `self` for join results `⟨i, j⟩`. Name clashes
    /// from the right side are disambiguated with a `_r` suffix, mirroring
    /// how DISC systems qualify ambiguous columns.
    pub fn merged(&self, other: &DataItem) -> DataItem {
        let mut fields = Vec::with_capacity(self.len() + other.len());
        fields.extend_from_slice(&self.fields);
        let mut out = DataItem {
            fields: Arc::new(fields),
        };
        for (name, value) in other.fields.iter() {
            if out.get(name).is_none() {
                out.push(name.clone(), value.clone());
            } else {
                let mut candidate = format!("{name}_r");
                while out.get(&candidate).is_some() {
                    candidate.push_str("_r");
                }
                out.push(candidate, value.clone());
            }
        }
        out
    }

    /// See [`Value::deep_size`].
    pub fn deep_size(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .fields()
                .map(|(n, v)| n.len() + v.deep_size())
                .sum::<usize>()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Item(d) => write!(f, "{d}"),
            Value::Bag(vs) => {
                write!(f, "{{{{")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}}}")
            }
            Value::Set(vs) => {
                write!(f, "{{")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl fmt::Display for DataItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, (n, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}: {v}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item() -> DataItem {
        DataItem::from_fields([
            ("id_str", Value::str("lp")),
            ("name", Value::str("Lisa Paul")),
        ])
    }

    #[test]
    fn item_get_and_order() {
        let d = item();
        assert_eq!(d.get("id_str"), Some(&Value::str("lp")));
        assert_eq!(d.get("missing"), None);
        let names: Vec<_> = d.names().collect();
        assert_eq!(names, ["id_str", "name"]);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_attribute_rejected() {
        DataItem::from_fields([("a", Value::Int(1)), ("a", Value::Int(2))]);
    }

    #[test]
    fn set_deduplicates_preserving_order() {
        let s = Value::set_from([Value::Int(2), Value::Int(1), Value::Int(2)]);
        assert_eq!(s, Value::Set(vec![Value::Int(2), Value::Int(1)]));
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(1), Value::Double(1.0));
        assert_ne!(Value::Int(1), Value::Double(1.5));
        assert!(Value::Int(1) < Value::Double(1.5));
    }

    #[test]
    fn hash_consistent_with_eq_for_numbers() {
        use std::collections::hash_map::DefaultHasher;
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Int(4)), h(&Value::Double(4.0)));
    }

    #[test]
    fn merged_disambiguates_clashes() {
        let l = DataItem::from_fields([("a", Value::Int(1))]);
        let r = DataItem::from_fields([("a", Value::Int(2)), ("b", Value::Int(3))]);
        let m = l.merged(&r);
        assert_eq!(m.get("a"), Some(&Value::Int(1)));
        assert_eq!(m.get("a_r"), Some(&Value::Int(2)));
        assert_eq!(m.get("b"), Some(&Value::Int(3)));
    }

    #[test]
    fn annotation_count_counts_every_nested_value() {
        // ⟨text, user_mentions: {{⟨id,name⟩}}⟩ => item(1) + text(1)
        //  + bag(1) + inner item(1) + id(1) + name(1) = 6
        let d = DataItem::from_fields([
            ("text", Value::str("hi")),
            ("user_mentions", Value::Bag(vec![Value::Item(item())])),
        ]);
        assert_eq!(Value::Item(d).annotation_count(), 6);
    }

    #[test]
    fn bag_vs_set_not_equal() {
        assert_ne!(Value::Bag(vec![]), Value::Set(vec![]));
    }

    #[test]
    fn remove_and_set() {
        let mut d = item();
        assert_eq!(d.remove("name"), Some(Value::str("Lisa Paul")));
        assert_eq!(d.len(), 1);
        d.set("id_str", Value::str("xx"));
        assert_eq!(d.get("id_str"), Some(&Value::str("xx")));
        d.set("fresh", Value::Int(1));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn display_round_shapes() {
        let d = DataItem::from_fields([("a", Value::Bag(vec![Value::Int(1), Value::Int(2)]))]);
        assert_eq!(format!("{d}"), "⟨a: {{1, 2}}⟩");
    }
}
