//! # pebble-nested — the nested data model (Sec. 4.1)
//!
//! Building blocks shared by the dataflow engine and the provenance layer:
//!
//! * [`value`] — constants, [`value::DataItem`]s, bags, and sets (Def. 4.1);
//! * [`types`] — recursive nested types `τ(·)` (Tab. 4) with inference,
//!   conformance and unification;
//! * [`path`] — access paths `d.a[i].b` (Def. 4.3) and schema-level paths
//!   with `[pos]` placeholders (Sec. 5.1);
//! * [`label`] — interned attribute names shared across items;
//! * [`column`] — column-major batches with selection vectors for the
//!   vectorized execution path;
//! * [`encode`] — binary codec primitives (varints, delta-coded id
//!   sequences, interned string tables, value/type codecs) shared by the
//!   provenance snapshot codec and the on-disk segment format;
//! * [`json`] — a minimal JSON reader/writer for examples and golden data;
//! * [`fmt`] — a table renderer used by the runnable examples.

#![warn(missing_docs)]

pub mod column;
pub mod encode;
pub mod fmt;
pub mod json;
pub mod label;
pub mod path;
pub mod types;
pub mod value;

pub use column::{Column, ColumnBatch, ColumnData, SelectionVector};
pub use label::Label;
pub use path::{Path, PathParseError, Step};
pub use types::{DataType, Field};
pub use value::{DataItem, Value};
