//! Minimal, self-contained JSON reader/writer for nested values.
//!
//! The evaluation datasets of the paper are JSON (Twitter) and XML-derived
//! records (DBLP). This module provides enough JSON support for examples,
//! golden tests, and persisting generated workloads — without adding a
//! dependency beyond the approved crate set.
//!
//! Mapping: JSON object → [`DataItem`] (insertion order preserved), JSON
//! array → [`Value::Bag`] (lists are ordered and may contain duplicates),
//! number → `Int` when integral without exponent/fraction, else `Double`.

use std::fmt::Write as _;

use crate::value::{DataItem, Value};

/// Error raised on malformed JSON input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Default nesting depth cap for [`parse`]. Deep enough for any real
/// dataset, shallow enough that adversarial `[[[[…` input errors out long
/// before the recursive-descent parser can exhaust the stack.
pub const DEFAULT_MAX_DEPTH: usize = 128;

/// Parses one JSON document into a [`Value`], capped at
/// [`DEFAULT_MAX_DEPTH`] levels of object/array nesting.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    parse_with_depth(input, DEFAULT_MAX_DEPTH)
}

/// Parses one JSON document, rejecting input nested deeper than
/// `max_depth` levels of objects/arrays with a [`JsonError`] instead of
/// recursing (the parser descends once per level, so unbounded nesting
/// would overflow the stack).
pub fn parse_with_depth(input: &str, max_depth: usize) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
        max_depth,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Parses newline-delimited JSON (one top-level item per line), the format
/// used to persist generated workloads.
pub fn parse_lines(input: &str) -> Result<Vec<DataItem>, JsonError> {
    input
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|line| match parse(line)? {
            Value::Item(d) => Ok(d),
            _ => Err(JsonError {
                offset: 0,
                message: "expected a JSON object per line".into(),
            }),
        })
        .collect()
}

/// Serializes a value as compact JSON. Sets are emitted as arrays (the
/// bag/set distinction is a schema property, not re-readable from JSON).
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value);
    out
}

/// Serializes a data item as a compact JSON object.
pub fn item_to_string(item: &DataItem) -> String {
    let mut out = String::new();
    write_item(&mut out, item);
    out
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Double(d) => {
            if d.fract() == 0.0 && d.is_finite() {
                let _ = write!(out, "{d:.1}");
            } else {
                let _ = write!(out, "{d}");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Item(d) => write_item(out, d),
        Value::Bag(vs) | Value::Set(vs) => {
            out.push('[');
            for (i, v) in vs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, v);
            }
            out.push(']');
        }
    }
}

fn write_item(out: &mut String, item: &DataItem) {
    out.push('{');
    for (i, (n, v)) in item.fields().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_string(out, n);
        out.push(':');
        write_value(out, v);
    }
    out.push('}');
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
    max_depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    /// Guards one level of descent into an object or array.
    fn nested(&mut self, f: fn(&mut Self) -> Result<Value, JsonError>) -> Result<Value, JsonError> {
        if self.depth >= self.max_depth {
            return Err(self.err(format!("nesting depth exceeds limit of {}", self.max_depth)));
        }
        self.depth += 1;
        let v = f(self);
        self.depth -= 1;
        v
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.nested(Self::object),
            b'[' => self.nested(Self::array),
            b'"' => Ok(Value::Str(self.string()?.into())),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(self.err(format!("unexpected character `{}`", c as char))),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut item = DataItem::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Item(item));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if item.get(&key).is_some() {
                return Err(self.err(format!("duplicate key `{key}`")));
            }
            item.push(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Item(item)),
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut elems = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Bag(elems));
        }
        loop {
            self.skip_ws();
            elems.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Bag(elems)),
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => return Ok(out),
                b'\\' => match self.bump().ok_or_else(|| self.err("bad escape"))? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = self
                            .bytes
                            .get(self.pos..self.pos + 4)
                            .ok_or_else(|| self.err("short \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| self.err("invalid \\u escape"))?,
                            16,
                        )
                        .map_err(|_| self.err("invalid \\u escape"))?;
                        self.pos += 4;
                        out.push(
                            char::from_u32(code).ok_or_else(|| self.err("invalid codepoint"))?,
                        );
                    }
                    c => return Err(self.err(format!("bad escape `\\{}`", c as char))),
                },
                c if c < 0x20 => return Err(self.err("control character in string")),
                c => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let width = utf8_width(c);
                        let end = start + width;
                        let slice = self
                            .bytes
                            .get(start..end)
                            .ok_or_else(|| self.err("truncated UTF-8"))?;
                        let s =
                            std::str::from_utf8(slice).map_err(|_| self.err("invalid UTF-8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_double = false;
        if self.peek() == Some(b'.') {
            is_double = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_double = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_double {
            text.parse::<f64>()
                .map(Value::Double)
                .map_err(|_| self.err("invalid number"))
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                // Valid JSON integers are unbounded; beyond i64 the value
                // degrades to the nearest double, like every other reader
                // without a bignum type. An empty digit string (bare `-`)
                // fails the f64 parse too and stays an error.
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Double)
                    .map_err(|_| self.err("invalid integer")),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_nested_tweet() {
        let v = parse(
            r#"{"text":"Hello @ls","user":{"id_str":"lp"},"user_mentions":[{"id_str":"ls"}],"retweet_cnt":0}"#,
        )
        .unwrap();
        let d = v.as_item().unwrap();
        assert_eq!(
            d.get("user").unwrap().as_item().unwrap().get("id_str"),
            Some(&Value::str("lp"))
        );
        assert_eq!(d.get("retweet_cnt"), Some(&Value::Int(0)));
        assert!(matches!(d.get("user_mentions"), Some(Value::Bag(v)) if v.len() == 1));
    }

    #[test]
    fn roundtrip_compact() {
        let src = r#"{"a":1,"b":[1,2.5,"x"],"c":{"d":true,"e":null}}"#;
        let v = parse(src).unwrap();
        assert_eq!(to_string(&v), src);
    }

    #[test]
    fn numbers() {
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("2.5").unwrap(), Value::Double(2.5));
        assert_eq!(parse("1e3").unwrap(), Value::Double(1000.0));
    }

    #[test]
    fn integer_overflow_falls_back_to_double() {
        // i64::MAX parses exactly as an integer; one past it overflows and
        // degrades to the nearest double instead of erroring out.
        assert_eq!(parse("9223372036854775807").unwrap(), Value::Int(i64::MAX));
        assert_eq!(
            parse("9223372036854775808").unwrap(),
            Value::Double(9223372036854775808.0)
        );
        assert_eq!(parse("-9223372036854775808").unwrap(), Value::Int(i64::MIN));
        assert_eq!(
            parse("-9223372036854775809").unwrap(),
            Value::Double(-9223372036854775809.0)
        );
        // u64::MAX and beyond-f64-precision magnitudes round-trip through
        // serialization: parse → write → parse is a fixed point even though
        // the decimal digits are no longer exact.
        for src in ["18446744073709551615", "123456789012345678901234567890"] {
            let v = parse(src).unwrap();
            let expect = Value::Double(src.parse::<f64>().unwrap());
            assert_eq!(v, expect, "{src}");
            assert_eq!(parse(&to_string(&v)).unwrap(), v, "{src}");
        }
        // A lone minus sign is still a parse error, not a NaN.
        assert!(parse("-").is_err());
        assert!(parse("{\"a\":-}").is_err());
    }

    #[test]
    fn string_escapes() {
        assert_eq!(parse(r#""a\n\"b\"A""#).unwrap(), Value::str("a\n\"b\"A"));
        let v = Value::str("tab\tnl\nq\"");
        assert_eq!(parse(&to_string(&v)).unwrap(), v);
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse(r#""héllo 世界""#).unwrap();
        assert_eq!(v, Value::str("héllo 世界"));
        assert_eq!(parse(&to_string(&v)).unwrap(), v);
    }

    #[test]
    fn errors_have_offsets() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a":1,"a":2}"#).is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn depth_cap_boundary() {
        // Exactly at the cap parses; one level past it is a typed error.
        let at = |n: usize| format!("{}1{}", "[".repeat(n), "]".repeat(n));
        assert!(parse_with_depth(&at(3), 3).is_ok());
        let err = parse_with_depth(&at(4), 3).unwrap_err();
        assert!(err.message.contains("nesting depth exceeds limit of 3"));
        // The default cap holds for realistic nesting and rejects the
        // adversarial case without touching the recursion limit.
        assert!(parse(&at(DEFAULT_MAX_DEPTH)).is_ok());
        assert!(parse(&at(DEFAULT_MAX_DEPTH + 1)).is_err());
        assert!(parse(&at(100_000)).is_err());
        // Depth resets between siblings: wide-but-shallow input is fine.
        assert!(parse_with_depth("[[1],[2],[3]]", 2).is_ok());
    }

    #[test]
    fn parse_lines_ndjson() {
        let items = parse_lines("{\"a\":1}\n\n{\"a\":2}\n").unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[1].get("a"), Some(&Value::Int(2)));
        assert!(parse_lines("[1]\n").is_err());
    }
}
