//! Property-based tests for the nested data model: value/JSON roundtrips,
//! path algebra laws, type inference/conformance coherence.

use proptest::prelude::*;

use pebble_nested::{json, DataItem, DataType, Path, Step, Value};

/// Strategy for attribute names (short, unique-ish identifiers).
fn attr_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}"
}

/// Strategy for arbitrary nested values with bounded depth/size.
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite doubles only: JSON cannot represent NaN/inf.
        (-1e15f64..1e15).prop_map(Value::Double),
        "[ -~]{0,12}".prop_map(Value::str),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Bag),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::set_from),
            item_from(inner).prop_map(Value::Item),
        ]
    })
}

fn item_from(inner: impl Strategy<Value = Value> + Clone) -> impl Strategy<Value = DataItem> {
    prop::collection::btree_map(attr_name(), inner, 0..4).prop_map(|m| {
        let mut d = DataItem::new();
        for (k, v) in m {
            d.push(k, v);
        }
        d
    })
}

fn item_strategy() -> impl Strategy<Value = DataItem> {
    item_from(value_strategy().boxed())
}

fn path_strategy() -> impl Strategy<Value = Path> {
    prop::collection::vec(
        prop_oneof![
            attr_name().prop_map(Step::Attr),
            (1u32..5).prop_map(Step::Pos),
            Just(Step::AnyPos),
        ],
        0..6,
    )
    .prop_map(Path::new)
}

proptest! {
    /// Parsing the display of any path yields the same path.
    #[test]
    fn path_display_parse_roundtrip(p in path_strategy()) {
        let shown = p.to_string();
        let reparsed: Path = shown.parse().expect("display must be parseable");
        prop_assert_eq!(reparsed, p);
    }

    /// `strip_prefix` inverts `join`.
    #[test]
    fn path_join_strip_inverse(a in path_strategy(), b in path_strategy()) {
        let joined = a.join(&b);
        prop_assert!(joined.starts_with(&a));
        let stripped = joined.strip_prefix(&a).expect("prefix must strip");
        // Stripping can only differ from `b` via [pos]/concrete-position
        // matching, which join/strip of the same `a` never introduces.
        prop_assert_eq!(stripped, b);
    }

    /// Schema-level conversion is idempotent and placeholder-only.
    #[test]
    fn schema_level_idempotent(p in path_strategy()) {
        let s = p.to_schema_level();
        prop_assert_eq!(s.clone(), s.to_schema_level());
        prop_assert!(!s.steps().iter().any(|st| matches!(st, Step::Pos(_))));
        // The original always matches its own schema-level form.
        prop_assert!(p.starts_with(&s));
    }

    /// Every value written as JSON parses back to an equal value, modulo the
    /// bag/set distinction (JSON arrays always read back as bags) and the
    /// Int/Double widening at the leaves.
    #[test]
    fn json_roundtrip(v in value_strategy()) {
        let text = json::to_string(&v);
        let parsed = json::parse(&text).expect("serializer output must parse");
        prop_assert!(json_equiv(&v, &parsed), "{v} != {parsed} via {text}");
    }

    /// Inference produces a type the value conforms to — for data that
    /// satisfies Def. 4.1's homogeneity requirement ("bags and sets are
    /// restricted to containing elements of the same type"). The generator
    /// can produce ill-typed collections; those are skipped.
    #[test]
    fn inferred_type_conforms(d in item_strategy()) {
        prop_assume!(well_typed(&Value::Item(d.clone())));
        let ty = DataType::of_item(&d);
        prop_assert!(ty.conforms(&Value::Item(d)));
    }

    /// Every path in `PS_d` evaluates to a value, and every schema-level
    /// path of the inferred type resolves in the type.
    #[test]
    fn path_set_paths_evaluate(d in item_strategy()) {
        let ty = DataType::of_item(&d);
        for p in Path::path_set(&d) {
            prop_assert!(p.eval(&d).is_some(), "path {p} must evaluate");
            prop_assert!(
                ty.resolve(&p.to_schema_level()).is_some(),
                "schema path {p} must resolve in {ty}"
            );
        }
    }

    /// `eval` of a concrete path agrees with `eval_all`.
    #[test]
    fn eval_agrees_with_eval_all(d in item_strategy()) {
        for p in Path::path_set(&d) {
            let single = p.eval(&d).expect("path from PS_d evaluates");
            let all = p.eval_all(&d);
            prop_assert_eq!(all, vec![single]);
        }
    }

    /// Type unification is commutative and `Null` is its identity.
    #[test]
    fn unify_laws(d1 in item_strategy(), d2 in item_strategy()) {
        let (a, b) = (DataType::of_item(&d1), DataType::of_item(&d2));
        prop_assert_eq!(a.unify(&b), b.unify(&a));
        prop_assert_eq!(a.unify(&DataType::Null), Some(a.clone()));
        prop_assert_eq!(a.unify(&a), Some(a.clone()));
    }
}

/// Def. 4.1 well-typedness: every collection's element types unify.
fn well_typed(v: &Value) -> bool {
    match v {
        Value::Item(d) => d.fields().all(|(_, v)| well_typed(v)),
        Value::Bag(vs) | Value::Set(vs) => {
            vs.iter().all(well_typed)
                && vs
                    .iter()
                    .map(DataType::of)
                    .try_fold(DataType::Null, |acc, t| acc.unify(&t))
                    .is_some()
        }
        _ => true,
    }
}

/// Structural equivalence treating Bag/Set as interchangeable (JSON arrays)
/// and Int(i) ≡ Double(i as f64) (the Value PartialEq already widens).
fn json_equiv(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Bag(x) | Value::Set(x), Value::Bag(y) | Value::Set(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(u, v)| json_equiv(u, v))
        }
        (Value::Item(x), Value::Item(y)) => {
            x.len() == y.len()
                && x.fields()
                    .zip(y.fields())
                    .all(|((nx, vx), (ny, vy))| nx == ny && json_equiv(vx, vy))
        }
        (Value::Double(x), Value::Int(y)) | (Value::Int(y), Value::Double(x)) => *x == *y as f64,
        _ => a == b,
    }
}
