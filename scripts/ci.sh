#!/usr/bin/env bash
# Full CI gate: formatting, lints (warnings are errors), release build,
# and the complete workspace test suite.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace --release

# Scheduler matrix: exercise the single-threaded inline path and the
# pooled morsel path (the env knobs override ExecConfig::default, which
# most tests and the bench harness use).
echo "==> cargo test -q (PEBBLE_PARTITIONS=1 PEBBLE_WORKERS=1)"
PEBBLE_PARTITIONS=1 PEBBLE_WORKERS=1 cargo test -q --workspace --release

echo "==> cargo test -q (PEBBLE_PARTITIONS=8 PEBBLE_WORKERS=8 PEBBLE_MORSEL_ROWS=16)"
PEBBLE_PARTITIONS=8 PEBBLE_WORKERS=8 PEBBLE_MORSEL_ROWS=16 cargo test -q --workspace --release

# Columnar executor matrix: the whole suite again with the vectorized
# column-at-a-time kernels forced on; every determinism / provenance /
# fault test must pass bit-for-bit against the row path's expectations.
echo "==> cargo test -q (PEBBLE_COLUMNAR=1)"
PEBBLE_COLUMNAR=1 cargo test -q --workspace --release

# Out-of-core matrix: the whole suite under a 4 KiB memory budget, which
# forces every materialized unit output, join build side, group shuffle,
# and capture sink through the spill path on every test workload; all
# results (rows, ids, association tables, error Displays) must stay
# bit-identical to the in-memory run.
echo "==> cargo test -q (PEBBLE_MEM_BUDGET=4096)"
PEBBLE_MEM_BUDGET=4096 cargo test -q --workspace --release

# Spill regression guard: the 100x scenario must produce byte-identical
# output under budget, actually spill every spillable structure at the
# floor budget, and finish a peak/2-budget run within the documented
# slowdown bound; numbers fold into the "spill" section of BENCH_6.json.
echo "==> spill regression guard (spillbench --assert)"
cargo run -q --release -p pebble-bench --bin spillbench -- --assert

# Bounded differential-fuzz smoke: fixed seed window, ~1500 pipelines
# through the Tab. 5 reference oracle (well under 30 s in release). The
# oracle sweeps the columnar axis internally on every seed.
echo "==> oracle differential smoke"
cargo run -q --release -p pebble-oracle --bin oracle_fuzz -- 1500 0

# Malformed-input smoke: the same generator with injected corruption
# (panicking UDFs, unresolvable paths); every engine executor must agree
# on the exact failing outcome.
echo "==> oracle malformed-input smoke"
cargo run -q --release -p pebble-oracle --bin oracle_fuzz -- 500 0 malformed

# Observability smoke: run a Twitter scenario with metrics + tracing
# enabled and validate the emitted run report and trace files against the
# schema documented in DESIGN.md ("Observability").
echo "==> observability smoke (report + trace schema)"
PEBBLE_METRICS=1 PEBBLE_TRACE=target/obs_smoke.trace.ndjson \
    cargo run -q --release -p pebble-bench --bin obs_smoke

# Overhead guard: the disabled telemetry path must add <2% to the hotpath
# bench; numbers fold into the "obs_overhead" section of BENCH_3.json.
echo "==> observability overhead guard (metrics-off < 2%)"
cargo run -q --release -p pebble-bench --bin obs_overhead -- --assert --out BENCH_3.json

# Panic-injection smoke at the two extreme scheduler shapes: the fault
# harness itself sweeps partition/worker shapes, and the env knobs swing
# every other test's default config across the same extremes.
echo "==> panic-injection smoke (PEBBLE_PARTITIONS=1 PEBBLE_WORKERS=1)"
PEBBLE_PARTITIONS=1 PEBBLE_WORKERS=1 \
    cargo test -q --release -p pebble-dataflow --test fault_injection

echo "==> panic-injection smoke (PEBBLE_PARTITIONS=8 PEBBLE_WORKERS=8)"
PEBBLE_PARTITIONS=8 PEBBLE_WORKERS=8 PEBBLE_MORSEL_ROWS=16 \
    cargo test -q --release -p pebble-dataflow --test fault_injection

# Columnar regression guard: the vectorized path must not be slower than
# the row path on T3 (plain and capture) beyond a small noise margin.
echo "==> columnar regression guard (colbench --assert)"
cargo run -q --release -p pebble-bench --bin colbench -- --assert

# Persistent-store smoke: two workload scenarios persisted to disk,
# cold-opened, and queried directly and through a live server — every
# answer must be byte-identical to the in-memory run.
echo "==> persistent store smoke (persist / cold-open / query equality)"
PEBBLE_STORE_DIR=target/ci_store cargo run -q --release -p pebble-bench --bin serve_smoke

# Store regression guard: the compressed segment must stay >=3x smaller
# than a naive dump, with store answers checked against memory first.
echo "==> store regression guard (servebench --assert)"
cargo run -q --release -p pebble-bench --bin servebench -- --assert

# Backend differential smoke: every capture backend (built-ins + baseline
# ports) against its naive oracle reference, across the shape matrix, on
# valid and malformed pipelines.
echo "==> backend differential smoke"
cargo run -q --release -p pebble-oracle --bin oracle_fuzz -- 500 0 backends

# Backend conformance smoke: env selection (PEBBLE_BACKEND) plus all six
# backends answering byte-identically across shapes on two workloads.
echo "==> backend smoke (env selection + shape conformance)"
cargo run -q --release -p pebble-bench --bin backend_smoke

# Backend regression guard: why-not determinism, non-trivial aggregation
# polynomials, and the Sec. 2 lipstick-vs-pebble annotation ratio; numbers
# fold into the "backends" section of BENCH_7.json.
echo "==> backend regression guard (backendbench --assert)"
cargo run -q --release -p pebble-bench --bin backendbench -- --assert

# Load-generator smoke: closed-loop multi-tenant mixed traffic (all
# request kinds, incl. WHYNOT and tenant-local engine runs) against a
# live server; the server's STATS accounting must reconcile exactly with
# client observation and every request must appear as a query span in
# the exported trace.
echo "==> load-generator smoke (closed loop + STATS reconciliation)"
cargo run -q --release -p pebble-bench --bin load_smoke

# Load regression guard: serial-baseline byte-equality under load, the
# open-loop offered-rate sweep (>=5 points), low-load p99 within bounds
# of the serial latency, and metrics-on serve-path overhead <2% with
# byte-identical frames; the curve folds into the "load" section of
# BENCH_8.json.
echo "==> load regression guard (loadbench --assert)"
cargo run -q --release -p pebble-bench --bin loadbench -- --assert --out BENCH_8.json

echo "CI OK"
