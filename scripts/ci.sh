#!/usr/bin/env bash
# Full CI gate: formatting, lints (warnings are errors), release build,
# and the complete workspace test suite.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace --release

echo "CI OK"
