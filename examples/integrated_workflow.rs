//! End-to-end integrated workflow: NDJSON data on disk, an optimized
//! pipeline, persisted provenance, and a textual provenance question —
//! the "fully integrated" experience the paper argues for (Sec. 1), plus
//! the front-end pieces it lists as future work.
//!
//! ```text
//! cargo run --example integrated_workflow
//! ```

use pebble::core::{
    backtrace_with, run_captured, storage, BacktraceIndex, CapturedRun, TreePattern,
};
use pebble::dataflow::{io, optimize, Context, ExecConfig, Expr, NamedExpr, ProgramBuilder};
use pebble::workloads::twitter::{generate, TwitterConfig};

fn main() {
    let dir = std::env::temp_dir().join(format!("pebble-workflow-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    // 1. Land raw data on disk, as a real deployment would.
    let tweets_path = dir.join("tweets.ndjson");
    let tweets = generate(&TwitterConfig::sized(500));
    io::write_ndjson(&tweets_path, &tweets).expect("write dataset");
    println!("wrote {} tweets to {}", tweets.len(), tweets_path.display());

    // 2. Read it back into a context and build a pipeline.
    let mut ctx = Context::new();
    let n = ctx
        .register_file("tweets", &tweets_path)
        .expect("read dataset");
    println!("registered {n} tweets");

    let mut b = ProgramBuilder::new();
    let read = b.read("tweets");
    let flat = b.flatten(read, "entities.user_mentions", "m_user");
    let shaped = b.select(
        flat,
        vec![
            NamedExpr::aliased("mentioned", "m_user.id_str"),
            NamedExpr::path("text"),
            NamedExpr::path("retweet_count"),
        ],
    );
    let hot = b.filter(shaped, Expr::col("retweet_count").gt(Expr::lit(100i64)));
    let program = b.build(hot);

    // 3. Let the optimizer push the filter towards the source.
    let (optimized, stats) = optimize(&program);
    println!(
        "optimizer: {} rewrites (select pushdown: {}, flatten pushdown: {})",
        stats.total(),
        stats.pushed_through_select,
        stats.pushed_through_flatten
    );

    // 4. Execute with capture; write result and provenance to disk.
    let run = run_captured(&optimized, &ctx, ExecConfig::default()).expect("pipeline runs");
    let result_path = dir.join("result.ndjson");
    run.output.write_ndjson(&result_path).expect("write result");
    let prov_path = dir.join("provenance.pbl");
    std::fs::write(&prov_path, storage::encode(&run.ops)).expect("write provenance");
    println!(
        "result: {} rows → {}; provenance: {} bytes → {}",
        run.output.rows.len(),
        result_path.display(),
        std::fs::metadata(&prov_path).unwrap().len(),
        prov_path.display()
    );

    // 5. Later: reload the pebbles and answer a textual provenance
    //    question with a prepared index.
    let decoded = storage::decode(&std::fs::read(&prov_path).unwrap()).expect("decode");
    let reloaded = CapturedRun {
        program: optimized.clone(),
        output: run.output,
        ops: decoded,
    };
    let index = BacktraceIndex::build(&reloaded);
    let query =
        TreePattern::parse(r#"mentioned = "u7", retweet_count > 100"#).expect("query parses");
    let matched = query.match_rows(&reloaded.output.rows);
    println!("\nquery matched {} result rows", matched.entries.len());
    for source in backtrace_with(&reloaded, &index, matched).unwrap() {
        println!(
            "source `{}`: {} contributing input tweets",
            source.source,
            source.entries.len()
        );
        for entry in source.entries.iter().take(2) {
            println!("  tweet #{}:", entry.index);
            for line in entry.tree.to_string().lines() {
                println!("    {line}");
            }
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}
