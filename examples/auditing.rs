//! Auditing use-case (Secs. 1 and 7.3.5): after a query result leaks,
//! structural provenance identifies *which attributes of which customers*
//! were exposed (GDPR), and which attributes influenced the result without
//! being exposed — the reconstruction-attack surface that lineage systems
//! miss.
//!
//! ```text
//! cargo run --example auditing
//! ```

use pebble::core::analysis::AuditReport;
use pebble::core::{backtrace, run_captured};
use pebble::dataflow::ExecConfig;
use pebble::workloads::{dblp_context, dblp_scenarios};

fn main() {
    let ctx = dblp_context(600);
    let cfg = ExecConfig::default();

    // The leaked results: scenarios D1-D5, each traced with its query.
    let mut report = AuditReport::default();
    let mut influencing_only = 0usize;
    for s in dblp_scenarios() {
        let run = run_captured(&s.program, &ctx, cfg).expect("scenario runs");
        let b = s.query.match_rows(&run.output.rows);
        for source in backtrace(&run, b).unwrap() {
            if source.source == "inproceedings" {
                report.merge(AuditReport::from_provenance(&source));
            }
        }
    }

    println!("== GDPR audit over scenarios D1-D5 (inproceedings records) ==\n");
    println!(
        "{} records leaked at least one attribute.\n",
        report.leaked.len()
    );
    for (idx, paths) in report.leaked.iter().take(5) {
        let mut attrs: Vec<String> = paths.iter().map(|p| p.to_string()).collect();
        attrs.sort();
        attrs.dedup();
        println!("record #{idx}: LEAKED {}", attrs.join(", "));
        if let Some(infl) = report.influencing.get(idx) {
            let mut attrs: Vec<String> = infl.iter().map(|p| p.to_string()).collect();
            attrs.sort();
            attrs.dedup();
            influencing_only += attrs.len();
            println!(
                "           influenced-only (reconstruction risk): {}",
                attrs.join(", ")
            );
        }
        println!();
    }
    println!(
        "…and {} more records.",
        report.leaked.len().saturating_sub(5)
    );
    println!();
    println!("A lineage system would have to report *entire tuples* as leaked —");
    println!("forcing, e.g., credit-card reissue for attributes that never left");
    println!("the system. Structural provenance pinpoints the exposed attributes");
    println!("and additionally surfaces {influencing_only}+ influencing-only attribute accesses");
    println!("that matter for reconstruction-attack risk assessment.");
}
