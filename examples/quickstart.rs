//! Quickstart: the paper's running example end-to-end (Secs. 2 and 6).
//!
//! Runs the Fig. 1 pipeline over the Tab. 1 tweets with structural
//! provenance capture, asks the Fig. 4 provenance question, and prints the
//! backtraced provenance trees of Fig. 2.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use pebble::core::{backtrace, run_captured};
use pebble::dataflow::ExecConfig;
use pebble::nested::fmt::render_table;
use pebble::workloads::running_example;

fn main() {
    // 1. The input data of Tab. 1.
    let ctx = running_example::context();
    println!("== Input tweets (Tab. 1) ==");
    println!("{}", render_table(&running_example::input()));

    // 2. Execute the Fig. 1 pipeline with structural provenance capture.
    let program = running_example::program();
    let run = run_captured(&program, &ctx, ExecConfig::default()).expect("pipeline runs");
    println!("== Result (Tab. 2) ==");
    println!("{}", render_table(&run.output.items()));

    // 3. The provenance question of Fig. 4: why does user lp have the
    //    text "Hello World" twice in their nested tweets?
    let query = running_example::query();
    let matched = query.match_rows(&run.output.rows);
    println!("== Matched result items (backtracing structure B) ==");
    for (id, tree) in &matched.entries {
        println!("result item {id}:\n{tree}");
    }

    // 4. Backtrace to the input (Fig. 2, left).
    let sources = backtrace(&run, matched).unwrap();
    println!("== Provenance trees on the input ==");
    for source in &sources {
        println!(
            "source `{}` (read operator #{}):",
            source.source, source.read_op
        );
        if source.entries.is_empty() {
            println!("  (no contributing items)\n");
        }
        for entry in &source.entries {
            println!(
                "  input item #{} (dataset position {}):",
                entry.id, entry.index
            );
            for line in entry.tree.to_string().lines() {
                println!("    {line}");
            }
            println!();
        }
    }
    println!("Legend: a{{n}} = accessed by operator n, m{{n}} = manipulated by");
    println!("operator n, (influencing) = accessed but not needed to reproduce");
    println!("the queried result. Everything else is contributing.");
}
