//! Data-usage patterns use-case (Secs. 1 and 7.3.5, Fig. 10): merge the
//! provenance of a query workload to find hot/cold items and attributes,
//! then derive vertical-partitioning and co-location advice.
//!
//! ```text
//! cargo run --example data_usage
//! ```

use pebble::core::analysis::co_access_pairs;
use pebble::core::{backtrace, run_captured, Heatmap, SourceProvenance};
use pebble::dataflow::ExecConfig;
use pebble::workloads::{dblp_context, dblp_scenarios};

fn main() {
    let ctx = dblp_context(600);
    let cfg = ExecConfig::default();

    let mut heatmap = Heatmap::new();
    let mut provs: Vec<SourceProvenance> = Vec::new();
    for s in dblp_scenarios() {
        let run = run_captured(&s.program, &ctx, cfg).expect("scenario runs");
        let b = s.query.match_rows(&run.output.rows);
        for source in backtrace(&run, b).unwrap() {
            if source.source == "inproceedings" {
                heatmap.absorb(&source);
                provs.push(source);
            }
        }
    }

    let attributes: Vec<String> = [
        "key",
        "type",
        "title",
        "year",
        "crossref",
        "authors",
        "pages",
        "booktitle",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    println!("== Usage heatmap, 25 sampled inproceedings (Fig. 10) ==");
    println!("{}", heatmap.render(25, &attributes));

    let cold = heatmap.cold_attributes(&attributes);
    println!("Vertical partitioning: move cold attributes {cold:?} to cold storage;");
    println!("only a fraction of attributes ever contributes, so column-based");
    println!("partitioning helps where row-based (tuple) partitioning would not —");
    println!("almost every tuple is hot.\n");

    let refs: Vec<&SourceProvenance> = provs.iter().collect();
    let pairs = co_access_pairs(&refs);
    println!("Frequently co-contributing attribute pairs (store adjacently):");
    for ((a, b), n) in pairs.iter().take(3) {
        println!("  {a} + {b}: {n} traced items");
    }
}
