//! Debugging use-case (Sec. 2): a data-quality issue — a duplicate value
//! in a nested collection — is traced back to the exact nested input items
//! that caused it, something neither tuple lineage (too coarse: every
//! tweet of the user) nor per-value where-provenance (loses the common
//! context) can do.
//!
//! ```text
//! cargo run --example debugging
//! ```

use pebble::baselines::{run_lineage, trace_back};
use pebble::core::{backtrace, run_captured};
use pebble::dataflow::ExecConfig;
use pebble::nested::{Path, Value};
use pebble::workloads::running_example;

fn main() {
    let ctx = running_example::context();
    let cfg = ExecConfig::default();
    let program = running_example::program();

    // Step 1: notice the data-quality issue in the result.
    let run = run_captured(&program, &ctx, cfg).expect("pipeline runs");
    let lp = run
        .output
        .rows
        .iter()
        .find(|r| Path::parse("user.id_str").eval(&r.item) == Some(&Value::str("lp")))
        .expect("user lp in result");
    println!("Result item for user lp:\n  {}\n", lp.item);
    println!("-> the text \"Hello World\" appears twice. Bug or real duplicate?\n");

    // Step 2: what a lineage system (Titian-style) answers.
    let lineage_run = run_lineage(&program, &ctx, cfg).expect("pipeline runs");
    let lp_lineage = lineage_run
        .output
        .rows
        .iter()
        .find(|r| Path::parse("user.id_str").eval(&r.item) == Some(&Value::str("lp")))
        .unwrap();
    let lineage = trace_back(&lineage_run, &[lp_lineage.id]);
    println!("Tuple lineage answer (Titian-style): whole input tweets");
    for s in &lineage {
        println!("  read #{}: input positions {:?}", s.read_op, s.indices);
    }
    println!("-> every tweet authored by or mentioning lp; the two culprits are masked.\n");

    // Step 3: the structural provenance answer.
    let b = running_example::query().match_rows(&run.output.rows);
    let sources = backtrace(&run, b).unwrap();
    println!("Structural provenance answer: exactly the contributing nested items");
    for source in &sources {
        for entry in &source.entries {
            println!(
                "  read #{} input position {}: contributing paths {:?}",
                source.read_op,
                entry.index,
                entry
                    .tree
                    .contributing_paths()
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
            );
        }
    }
    println!();
    println!("-> only the two identical \"Hello World\" tweets (input positions 1");
    println!("   and 2) contribute: the duplicate is real input duplication, not a");
    println!("   pipeline bug. The influencing retweet_cnt/name accesses explain");
    println!("   how the items travelled through filter and grouping.");
}
