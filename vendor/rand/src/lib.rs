//! Minimal, dependency-free stand-in for the parts of `rand` 0.8 this
//! workspace uses: a seedable deterministic generator (`rngs::StdRng`),
//! `Rng::gen_range` over integer/float ranges, and `Rng::gen_bool`.
//!
//! The generator is SplitMix64 — statistically fine for synthetic data
//! generation, fully reproducible from the seed, and identical on every
//! platform. It intentionally does *not* match upstream `StdRng`'s stream;
//! all golden data in this repository is generated with this
//! implementation.

use std::ops::{Range, RangeInclusive};

/// Seedable RNG constructors (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random value generation (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

/// A range that can be uniformly sampled (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(7);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = r.gen_range(-5..17);
            assert!((-5..17).contains(&v));
            let u: usize = r.gen_range(0..3);
            assert!(u < 3);
            let w: u64 = r.gen_range(1..=4);
            assert!((1..=4).contains(&w));
            let f: f64 = r.gen_range(-90.0..90.0);
            assert!((-90.0..90.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
