//! Collection strategies (`prop::collection::*`).

use std::collections::BTreeMap;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec`s with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// See [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap`s with an entry count drawn from `size` (fewer
/// after key deduplication, as upstream).
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: Range<usize>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy { key, value, size }
}

/// See [`btree_map`].
#[derive(Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: Range<usize>,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let len = self.size.generate(rng);
        let mut out = BTreeMap::new();
        for _ in 0..len {
            out.insert(self.key.generate(rng), self.value.generate(rng));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_len_in_range() {
        let s = vec(0i64..5, 2..6);
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn map_keys_unique() {
        let s = btree_map(0i64..3, 0i64..100, 0..8);
        let mut rng = TestRng::deterministic("map");
        let m = s.generate(&mut rng);
        assert!(m.len() <= 3);
    }
}
