//! Minimal, dependency-free stand-in for the parts of `proptest` 1.x this
//! workspace uses: strategies (`Just`, ranges, regex-subset string
//! literals, tuples, `prop_map`, `prop_recursive`, `boxed`, unions),
//! collection strategies (`vec`, `btree_map`), `any` for a few primitives,
//! and the `proptest!` / `prop_assert*` / `prop_assume!` / `prop_oneof!`
//! macros.
//!
//! Differences from upstream: generation is derandomized (a fixed seed per
//! test name) and failing cases are *not* shrunk — the failing input is
//! printed as-is. That trade keeps the harness tiny while preserving the
//! property-test semantics the suite relies on.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything the test files import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
    // Upstream's prelude re-exports the crate under the name `prop` so test
    // code can say `prop::collection::vec(...)`.
    pub use crate as prop;
}

/// Defines property tests: each `fn name(arg in strategy, ...)` body runs
/// `config.cases` times with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut rng,
                        );
                    )*
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match result {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            rejected += 1;
                            assert!(
                                rejected < config.cases.saturating_mul(64) + 1024,
                                "too many prop_assume! rejections in {}",
                                stringify!($name),
                            );
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!("property `{}` failed: {msg}", stringify!($name)),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {a:?}\n right: {b:?}",
            stringify!($a),
            stringify!($b),
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "{}\n  left: {a:?}\n right: {b:?}",
            format!($($fmt)+),
        );
    }};
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(v in 3i64..17, f in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&v));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn map_and_assume(v in 0i64..100) {
            prop_assume!(v % 2 == 0);
            let doubled = (0i64..50).prop_map(|x| x * 2).generate_for_test();
            prop_assert!(doubled % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn strings_match_class(s in "[a-z][a-z0-9_]{0,6}") {
            prop_assert!(!s.is_empty() && s.len() <= 7, "{s}");
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }

        #[test]
        fn collections_sized(xs in prop::collection::vec(0i64..5, 0..4)) {
            prop_assert!(xs.len() < 4);
        }

        #[test]
        fn oneof_and_recursive(v in nested()) {
            prop_assert!(depth(&v) <= 4, "{v:?}");
        }
    }

    #[derive(Clone, Debug)]
    enum Tree {
        Leaf(i64),
        Node(Vec<Tree>),
    }

    fn nested() -> impl Strategy<Value = Tree> {
        let leaf = (0i64..10).prop_map(Tree::Leaf);
        leaf.prop_recursive(3, 24, 4, |inner| {
            prop::collection::vec(inner, 0..3).prop_map(Tree::Node)
        })
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(n) => {
                assert!((0..10).contains(n));
                1
            }
            Tree::Node(ts) => 1 + ts.iter().map(depth).max().unwrap_or(0),
        }
    }

    impl<S: Strategy> StrategyTestExt for S {}
    trait StrategyTestExt: Strategy + Sized {
        fn generate_for_test(&self) -> Self::Value {
            let mut rng = crate::test_runner::TestRng::deterministic("ext");
            self.generate(&mut rng)
        }
    }
}
