//! Test-runner types: configuration, case errors, and the deterministic
//! generator used for input generation.

/// Per-test configuration (subset of upstream `ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the input; the case is re-drawn.
    Reject(String),
    /// A `prop_assert*` failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure error.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection error.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic SplitMix64 generator seeded from the test name, so every
/// run of the suite explores the same inputs (derandomized testing).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, mixed with a fixed tweak.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_deterministic_per_name() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("other");
        assert_ne!(TestRng::deterministic("t").next_u64(), c.next_u64());
    }

    #[test]
    fn below_in_bounds() {
        let mut r = TestRng::deterministic("bounds");
        for _ in 0..100 {
            assert!(r.below(7) < 7);
        }
    }
}
