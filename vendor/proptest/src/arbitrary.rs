//! `any::<T>()` for the primitives the workspace generates.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical strategy (subset of upstream `Arbitrary`).
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy for one primitive type.
#[derive(Clone, Copy, Debug, Default)]
pub struct PrimitiveStrategy<T>(std::marker::PhantomData<T>);

impl Strategy for PrimitiveStrategy<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = PrimitiveStrategy<bool>;

    fn arbitrary() -> Self::Strategy {
        PrimitiveStrategy(std::marker::PhantomData)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for PrimitiveStrategy<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                // Bias towards small magnitudes (edge-prone inputs) a
                // quarter of the time, like upstream's size-aware domains.
                match rng.below(4) {
                    0 => (rng.below(17) as i64 - 8) as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }

        impl Arbitrary for $t {
            type Strategy = PrimitiveStrategy<$t>;

            fn arbitrary() -> Self::Strategy {
                PrimitiveStrategy(std::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_both_values() {
        let s = any::<bool>();
        let mut rng = TestRng::deterministic("bool");
        let trues = (0..100).filter(|_| s.generate(&mut rng)).count();
        assert!((20..80).contains(&trues));
    }

    #[test]
    fn ints_cover_small_values() {
        let s = any::<i64>();
        let mut rng = TestRng::deterministic("ints");
        assert!((0..200).any(|_| s.generate(&mut rng).unsigned_abs() < 9));
    }
}
