//! Generation for the regex subset used as string strategies:
//! literal characters, character classes (`[a-z0-9_]`, ranges and
//! literals), and bounded repetition (`{n}`, `{m,n}`, `?`, `*`, `+` with
//! a small implicit cap). Anything else panics loudly — this is a test
//! helper, not a regex engine.

use crate::test_runner::TestRng;

/// Cap for the open-ended `*`/`+` quantifiers.
const UNBOUNDED_CAP: u32 = 8;

#[derive(Clone, Debug)]
enum Piece {
    Literal(char),
    Class(Vec<(char, char)>), // inclusive ranges; literals are (c, c)
}

#[derive(Clone, Debug)]
struct Term {
    piece: Piece,
    min: u32,
    max: u32, // inclusive
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let terms = parse(pattern);
    let mut out = String::new();
    for term in &terms {
        let span = (term.max - term.min + 1) as u64;
        let count = term.min + rng.below(span) as u32;
        for _ in 0..count {
            match &term.piece {
                Piece::Literal(c) => out.push(*c),
                Piece::Class(ranges) => out.push(pick(ranges, rng)),
            }
        }
    }
    out
}

fn pick(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u64 = ranges
        .iter()
        .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
        .sum();
    let mut draw = rng.below(total);
    for (lo, hi) in ranges {
        let width = (*hi as u64) - (*lo as u64) + 1;
        if draw < width {
            return char::from_u32(*lo as u32 + draw as u32)
                .expect("class range covers invalid char");
        }
        draw -= width;
    }
    unreachable!("draw bounded by total width")
}

fn parse(pattern: &str) -> Vec<Term> {
    let mut chars = pattern.chars().peekable();
    let mut terms = Vec::new();
    while let Some(c) = chars.next() {
        let piece = match c {
            '[' => parse_class(&mut chars, pattern),
            '\\' => Piece::Literal(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}")),
            ),
            '(' | ')' | '|' | '.' | '^' | '$' => {
                panic!("unsupported regex syntax {c:?} in pattern {pattern:?}")
            }
            other => Piece::Literal(other),
        };
        let (min, max) = parse_quantifier(&mut chars, pattern);
        terms.push(Term { piece, min, max });
    }
    terms
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Piece {
    let mut ranges = Vec::new();
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
        match c {
            ']' => break,
            '^' if ranges.is_empty() => {
                panic!("negated classes unsupported in pattern {pattern:?}")
            }
            '\\' => {
                let esc = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                ranges.push((esc, esc));
            }
            lo => {
                if chars.peek() == Some(&'-') {
                    chars.next();
                    match chars.peek() {
                        Some(']') | None => {
                            // trailing '-' is a literal
                            ranges.push((lo, lo));
                            ranges.push(('-', '-'));
                        }
                        Some(_) => {
                            let hi = chars.next().unwrap();
                            assert!(lo <= hi, "inverted range in pattern {pattern:?}");
                            ranges.push((lo, hi));
                        }
                    }
                } else {
                    ranges.push((lo, lo));
                }
            }
        }
    }
    assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
    Piece::Class(ranges)
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> (u32, u32) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut body = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    let parsed = match body.split_once(',') {
                        Some((m, n)) => m.parse().ok().zip(n.parse().ok()),
                        None => body.parse().ok().map(|n| (n, n)),
                    };
                    let (min, max) = parsed.unwrap_or_else(|| {
                        panic!("bad quantifier {{{body}}} in pattern {pattern:?}")
                    });
                    assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
                    return (min, max);
                }
                body.push(c);
            }
            panic!("unterminated quantifier in pattern {pattern:?}")
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('*') => {
            chars.next();
            (0, UNBOUNDED_CAP)
        }
        Some('+') => {
            chars.next();
            (1, UNBOUNDED_CAP)
        }
        _ => (1, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("string")
    }

    #[test]
    fn identifier_pattern() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = generate("[a-z][a-z0-9_]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn printable_ascii_pattern() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = generate("[ -~]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn literals_and_exact_counts() {
        let mut rng = rng();
        assert_eq!(generate("abc", &mut rng), "abc");
        assert_eq!(generate("x{3}", &mut rng), "xxx");
        let s = generate("a?b+", &mut rng);
        assert!(s.trim_start_matches('a').chars().all(|c| c == 'b'));
    }
}
