//! The [`Strategy`] trait and core combinators.

use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type (subset of upstream
/// `Strategy`; generation only, no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates the leaves, and
    /// `branch` wraps an inner strategy into one nesting level. `depth`
    /// bounds the nesting. The `_desired_size`/`_expected_branch_size`
    /// tuning knobs of upstream are accepted and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            // Each level flips between a leaf and one more nesting level,
            // bounding both depth and expected size.
            strat = Union::new(vec![leaf.clone(), branch(strat).boxed()]).boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe generation, used behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }

    fn boxed(self) -> BoxedStrategy<T>
    where
        T: 'static,
    {
        self // already erased; avoid double indirection
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<char> {
    type Value = char;

    fn generate(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = (self.start as u32, self.end as u32);
        assert!(lo < hi, "empty range strategy");
        loop {
            if let Some(c) = char::from_u32(lo + rng.below((hi - lo) as u64) as u32) {
                return c;
            }
        }
    }
}

/// Regex-subset string strategies: `"[a-z][a-z0-9_]{0,6}"` etc. See
/// [`crate::string`] for the supported syntax.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0/0, S1/1)
    (S0/0, S1/1, S2/2)
    (S0/0, S1/1, S2/2, S3/3)
    (S0/0, S1/1, S2/2, S3/3, S4/4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_uniformish() {
        let u = Union::new(vec![Just(0u8).boxed(), Just(1u8).boxed()]);
        let mut rng = TestRng::deterministic("union");
        let ones: usize = (0..1000).map(|_| u.generate(&mut rng) as usize).sum();
        assert!((300..700).contains(&ones), "{ones}");
    }

    #[test]
    fn tuples_and_maps() {
        let s = (0i64..5, 10i64..20).prop_map(|(a, b)| a + b);
        let mut rng = TestRng::deterministic("tuple");
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((10..25).contains(&v));
        }
    }
}
