//! Minimal, dependency-free stand-in for the parts of `criterion` 0.5 the
//! workspace benches use: `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: one warm-up pass bounded by `warm_up_time`, then
//! `sample_size` timed samples bounded by `measurement_time`; the median
//! sample is reported on stdout as `bench <group>/<id> ... <median>`.
//! This is deliberately simple — the repository's tables come from the
//! dedicated harness bins, the criterion benches exist for ad-hoc
//! exploration — but the numbers are real wall-clock medians.

use std::fmt;
use std::time::{Duration, Instant};

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Creates an id from a name and a parameter (both displayed).
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.to_string(),
            param: param.to_string(),
        }
    }

    fn label(&self) -> String {
        if self.param.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, self.param)
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            param: String::new(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            param: String::new(),
        }
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher<'_> {
    /// Runs `f` repeatedly, recording one duration sample per run.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(f());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let measure_start = Instant::now();
        for _ in 0..self.sample_size.max(1) {
            let t = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t.elapsed());
            if measure_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }
}

/// A named group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Warm-up budget before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total sampling budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        self.report(&id, &samples);
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (prints nothing extra; present for API parity).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, samples: &[Duration]) {
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort_unstable();
        let median = sorted
            .get(sorted.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
        println!(
            "bench {}/{}  samples={}  median={:.3} ms",
            self.name,
            id.label(),
            samples.len(),
            median.as_secs_f64() * 1e3
        );
    }
}

/// Benchmark driver (subset of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1200),
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside a group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        self.benchmark_group("crit").bench_function(id, f);
    }
}

/// Opaque black box preventing the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function list (API parity with criterion).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point (API parity with criterion).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0usize;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert!(runs >= 3);
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("a", 7).label(), "a/7");
        assert_eq!(BenchmarkId::from("x").label(), "x");
    }
}
