//! Provenance persistence: captured pebbles survive an encode/decode
//! roundtrip, and backtracing over reloaded provenance returns the same
//! answers as over the live capture.

use pebble::core::{backtrace, run_captured, storage, CapturedRun};
use pebble::dataflow::ExecConfig;
use pebble::workloads::{dblp_context, dblp_scenarios, twitter_context, twitter_scenarios};

fn cfg() -> ExecConfig {
    ExecConfig::with_partitions(3)
}

#[test]
fn reloaded_provenance_answers_identically() {
    let cases = [
        (twitter_context(250), twitter_scenarios()),
        (dblp_context(500), dblp_scenarios()),
    ];
    for (ctx, scenarios) in cases {
        for s in scenarios {
            let run = run_captured(&s.program, &ctx, cfg()).unwrap();
            let bytes = storage::encode(&run.ops);
            let decoded = storage::decode(&bytes).unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert_eq!(run.ops, decoded, "{}: ops roundtrip", s.name);

            let live = backtrace(&run, s.query.match_rows(&run.output.rows)).unwrap();
            let reloaded = CapturedRun {
                program: s.program.clone(),
                output: run.output,
                ops: decoded,
            };
            let replayed = backtrace(&reloaded, s.query.match_rows(&reloaded.output.rows)).unwrap();
            assert_eq!(live.len(), replayed.len(), "{}", s.name);
            for (a, b) in live.iter().zip(&replayed) {
                assert_eq!(a.read_op, b.read_op);
                assert_eq!(a.entries.len(), b.entries.len(), "{}", s.name);
                for (ea, eb) in a.entries.iter().zip(&b.entries) {
                    assert_eq!(ea.index, eb.index, "{}", s.name);
                    assert_eq!(ea.tree, eb.tree, "{}", s.name);
                }
            }
        }
    }
}

#[test]
fn encoded_size_tracks_structural_accounting() {
    let ctx = dblp_context(500);
    for s in dblp_scenarios() {
        let run = run_captured(&s.program, &ctx, cfg()).unwrap();
        let encoded = storage::encode(&run.ops).len();
        let accounted = run.structural_bytes();
        // The varint/delta codec compresses identifiers, so the file is
        // smaller than the in-memory accounting — but within an order of
        // magnitude, as promised in `storage`'s docs.
        assert!(
            encoded <= accounted * 2,
            "{}: {encoded} vs {accounted}",
            s.name
        );
        assert!(
            encoded * 16 >= accounted,
            "{}: {encoded} vs {accounted}",
            s.name
        );
    }
}
