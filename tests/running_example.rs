//! Golden end-to-end test of the paper's running example: Tab. 1 input →
//! Fig. 1 pipeline → Tab. 2 result → Fig. 4 query → Fig. 2 provenance
//! trees.

use pebble::core::{backtrace, run_captured, NodeLabel};
use pebble::dataflow::ExecConfig;
use pebble::nested::{Path, Value};
use pebble::workloads::running_example;

fn cfg() -> ExecConfig {
    ExecConfig::with_partitions(3)
}

#[test]
fn full_running_example_reproduces_fig2() {
    let ctx = running_example::context();
    let program = running_example::program();
    let run = run_captured(&program, &ctx, cfg()).unwrap();

    // Tab. 2: three result users.
    assert_eq!(run.output.rows.len(), 3);

    // Fig. 4 query matches exactly the lp result item.
    let matched = running_example::query().match_rows(&run.output.rows);
    assert_eq!(matched.entries.len(), 1);

    // Backtrace to the sources (Fig. 2 left).
    let sources = backtrace(&run, matched).unwrap();
    // Both reads are examined; only the upper branch (read #0) contributes.
    let upper = sources.iter().find(|s| s.read_op == 0).unwrap();
    assert_eq!(
        upper.entries.iter().map(|e| e.index).collect::<Vec<_>>(),
        [1, 2],
        "exactly the two duplicate Hello World tweets contribute"
    );
    if let Some(lower) = sources.iter().find(|s| s.read_op == 3) {
        assert!(
            lower.entries.is_empty(),
            "the mention branch contributes nothing to the queried duplicates"
        );
    }

    for entry in &upper.entries {
        let tree = &entry.tree;
        // Contributing: text and user.id_str (and the user context node).
        let contributing = tree.contributing_paths();
        assert!(contributing.contains(&Path::attr("text")));
        assert!(contributing.contains(&Path::parse("user.id_str")));
        // Influencing: retweet_cnt (filter) and user.name (grouping).
        let influencing = tree.influencing_paths();
        assert!(influencing.contains(&Path::attr("retweet_cnt")));
        assert!(influencing.contains(&Path::parse("user.name")));

        let node = |p: &str| {
            tree.nodes()
                .into_iter()
                .find(|(path, _)| *path == Path::parse(p))
                .unwrap_or_else(|| panic!("node {p} missing"))
                .1
                .clone()
        };
        // retweet_cnt accessed by the filter (paper op 2 = our op 1).
        assert!(node("retweet_cnt").accessed.contains(&1));
        // name accessed for grouping (paper op 9 = our op 8) — recorded at
        // op 8 and then relocated through the selects; the access mark
        // travels with the node.
        assert!(node("user.name").accessed.contains(&8));
        // name manipulated by the two selects (paper 3 and 8 = our 2, 7).
        assert!(node("user.name").manipulated.contains(&2));
        assert!(node("user.name").manipulated.contains(&7));
        // text contributes and was manipulated by both selects as well.
        assert!(node("text").manipulated.contains(&2));
        assert!(node("text").manipulated.contains(&7));
    }
}

#[test]
fn structural_provenance_is_subset_of_lineage() {
    // Lineage returns every input tweet containing user lp (Sec. 2's
    // light-grey set); structural provenance returns exactly the two
    // culprits — a strict subset.
    use pebble::baselines::{run_lineage, trace_back};
    let ctx = running_example::context();
    let program = running_example::program();

    let run = run_captured(&program, &ctx, cfg()).unwrap();
    let matched = running_example::query().match_rows(&run.output.rows);
    let lp_id = matched.entries[0].0;
    let structural = backtrace(&run, matched).unwrap();

    let lrun = run_lineage(&program, &ctx, cfg()).unwrap();
    // Find the same result item in the lineage run by value.
    let lp_item = run
        .output
        .rows
        .iter()
        .find(|r| r.id == lp_id)
        .unwrap()
        .item
        .clone();
    let lp_lineage_id = lrun
        .output
        .rows
        .iter()
        .find(|r| r.item == lp_item)
        .unwrap()
        .id;
    let lineage = trace_back(&lrun, &[lp_lineage_id]);

    for sp in &structural {
        let sl = lineage
            .iter()
            .find(|l| l.read_op == sp.read_op)
            .expect("lineage covers read");
        for e in &sp.entries {
            assert!(
                sl.indices.contains(&e.index),
                "structural index {} not in lineage {:?}",
                e.index,
                sl.indices
            );
        }
    }
    // And lineage is strictly coarser: the upper read's lineage includes
    // tweet 0 (authored by lp) which structural provenance excludes.
    let upper = lineage.iter().find(|l| l.read_op == 0).unwrap();
    assert!(upper.indices.contains(&0));
    let upper_s = structural.iter().find(|s| s.read_op == 0).unwrap();
    assert!(!upper_s.entries.iter().any(|e| e.index == 0));
}

#[test]
fn result_provenance_ids_positions_match_tab2_structure() {
    let ctx = running_example::context();
    let run = run_captured(&running_example::program(), &ctx, cfg()).unwrap();
    let lp = run
        .output
        .rows
        .iter()
        .find(|r| Path::parse("user.id_str").eval(&r.item) == Some(&Value::str("lp")))
        .unwrap();
    let tweets = lp.item.get("tweets").unwrap().as_collection().unwrap();
    assert_eq!(tweets.len(), 4);
    // Positions 2 and 3 hold the duplicate, as the Fig. 4 box [2,2] needs.
    for pos in [1, 2] {
        assert_eq!(
            tweets[pos].as_item().unwrap().get("text"),
            Some(&Value::str("Hello World"))
        );
    }
    let _ = NodeLabel::Attr(String::new()); // exercise the re-export
}

#[test]
fn textual_query_syntax_equals_builder_query() {
    use pebble::core::TreePattern;
    let ctx = running_example::context();
    let run = run_captured(&running_example::program(), &ctx, cfg()).unwrap();
    // The Fig. 4 question in the textual front-end syntax.
    let parsed =
        TreePattern::parse(r#"//id_str = "lp", tweets / text = "Hello World" {2,2}"#).unwrap();
    let a = running_example::query().match_rows(&run.output.rows);
    let b = parsed.match_rows(&run.output.rows);
    assert_eq!(a.entries.len(), b.entries.len());
    for ((ia, ta), (ib, tb)) in a.entries.iter().zip(&b.entries) {
        assert_eq!(ia, ib);
        assert_eq!(ta, tb);
    }
    // And the backtraced provenance is identical.
    let pa = backtrace(&run, a).unwrap();
    let pb = backtrace(&run, b).unwrap();
    assert_eq!(pa.len(), pb.len());
    for (sa, sb) in pa.iter().zip(&pb) {
        assert_eq!(sa.entries.len(), sb.entries.len());
        for (ea, eb) in sa.entries.iter().zip(&sb.entries) {
            assert_eq!(ea.index, eb.index);
            assert_eq!(ea.tree, eb.tree);
        }
    }
}

#[test]
fn how_provenance_polynomial_for_item_102() {
    use pebble::baselines::polynomial;
    use pebble::nested::{Path, Value};
    // Sec. 2's polynomial: verbose tuple-level how-provenance for the lp
    // result item, flagged as insufficient compared to structural
    // provenance — which tests above show pinpoints the two duplicates.
    let ctx = running_example::context();
    let run = run_captured(&running_example::program(), &ctx, cfg()).unwrap();
    let lp = run
        .output
        .rows
        .iter()
        .find(|r| Path::parse("user.id_str").eval(&r.item) == Some(&Value::str("lp")))
        .unwrap();
    let poly = polynomial(&run, lp.id);
    let rendered = poly.to_string();
    assert!(rendered.contains("P_cl"), "{rendered}");
    assert!(rendered.contains("P_flatten"), "{rendered}");
    // All four source tweets appear — including tweet 29's mention, which
    // the structural answer correctly excludes for the duplicate question.
    assert_eq!(poly.variables().len(), 4);
}
