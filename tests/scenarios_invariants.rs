//! Cross-crate invariants over all ten evaluation scenarios:
//!
//! * capture–replay equivalence: capture never changes results;
//! * containment: structural provenance item sets are contained in the
//!   lineage baseline's answer;
//! * eager/lazy agreement: the holistic approach and the PROVision-style
//!   lazy approach return the same traced input items;
//! * provenance size ordering: structural ≥ lineage, with bounded extra.

use pebble::baselines::{lazy_query, run_lineage, trace_back};
use pebble::core::{backtrace, run_captured};
use pebble::dataflow::{run, ExecConfig, NoSink};
use pebble::workloads::{
    dblp_context, dblp_scenarios, twitter_context, twitter_scenarios, Scenario,
};

fn cfg() -> ExecConfig {
    ExecConfig::with_partitions(4)
}

fn contexts() -> Vec<(pebble::dataflow::Context, Vec<Scenario>)> {
    vec![
        (twitter_context(300), twitter_scenarios()),
        (dblp_context(600), dblp_scenarios()),
    ]
}

#[test]
fn capture_replay_equivalence_all_scenarios() {
    for (ctx, scenarios) in contexts() {
        for s in scenarios {
            let plain = run(&s.program, &ctx, cfg(), &NoSink).unwrap().items();
            let captured = run_captured(&s.program, &ctx, cfg())
                .unwrap()
                .output
                .items();
            assert_eq!(plain, captured, "{} capture changed the result", s.name);
        }
    }
}

#[test]
fn structural_contained_in_lineage_all_scenarios() {
    for (ctx, scenarios) in contexts() {
        for s in scenarios {
            let crun = run_captured(&s.program, &ctx, cfg()).unwrap();
            let b = s.query.match_rows(&crun.output.rows);
            let matched_ids: Vec<u64> = b.entries.iter().map(|(id, _)| *id).collect();
            let structural = backtrace(&crun, b).unwrap();

            let lrun = run_lineage(&s.program, &ctx, cfg()).unwrap();
            // Identifier sequences are deterministic across both captured
            // runs (same engine, same partitioning), so ids line up.
            let lineage = trace_back(&lrun, &matched_ids);

            for sp in &structural {
                let Some(sl) = lineage.iter().find(|l| l.read_op == sp.read_op) else {
                    assert!(
                        sp.entries.is_empty(),
                        "{}: structural traced read #{} that lineage missed",
                        s.name,
                        sp.read_op
                    );
                    continue;
                };
                for e in &sp.entries {
                    assert!(
                        sl.indices.contains(&e.index),
                        "{}: structural item {} at read #{} not in lineage",
                        s.name,
                        e.index,
                        sp.read_op
                    );
                }
            }
        }
    }
}

#[test]
fn eager_and_lazy_agree_all_scenarios() {
    for (ctx, scenarios) in contexts() {
        for s in scenarios {
            let crun = run_captured(&s.program, &ctx, cfg()).unwrap();
            let b = s.query.match_rows(&crun.output.rows);
            let eager = backtrace(&crun, b).unwrap();
            let (lazy, stats) = lazy_query(&s.program, &ctx, cfg(), &s.query).unwrap();
            assert_eq!(stats.reruns, s.program.reads().len());
            assert_eq!(eager.len(), lazy.len(), "{}", s.name);
            for (a, b) in eager.iter().zip(&lazy) {
                assert_eq!(a.read_op, b.read_op, "{}", s.name);
                let ia: Vec<usize> = a.entries.iter().map(|e| e.index).collect();
                let ib: Vec<usize> = b.entries.iter().map(|e| e.index).collect();
                assert_eq!(ia, ib, "{} read #{}", s.name, a.read_op);
            }
        }
    }
}

#[test]
fn structural_size_exceeds_lineage_boundedly() {
    for (ctx, scenarios) in contexts() {
        for s in scenarios {
            let crun = run_captured(&s.program, &ctx, cfg()).unwrap();
            let lineage = crun.lineage_bytes();
            let structural = crun.structural_bytes();
            assert!(structural >= lineage, "{}", s.name);
            // The extra is positions + schema-level paths — far below the
            // lineage volume itself at realistic sizes (Sec. 7.3.2's
            // "less than 200MB on gigabytes of lineage"; here: < 2x).
            assert!(
                structural - lineage <= lineage.max(4096),
                "{}: extra {} vs lineage {}",
                s.name,
                structural - lineage,
                lineage
            );
        }
    }
}

#[test]
fn deterministic_execution_across_partitionings() {
    for (ctx, scenarios) in contexts() {
        for s in scenarios {
            let one = run(&s.program, &ctx, ExecConfig::with_partitions(1), &NoSink)
                .unwrap()
                .items();
            let eight = run(&s.program, &ctx, ExecConfig::with_partitions(8), &NoSink)
                .unwrap()
                .items();
            assert_eq!(one, eight, "{} not deterministic", s.name);
        }
    }
}

#[test]
fn optimizer_preserves_results_and_provenance() {
    use pebble::dataflow::optimize;
    for (ctx, scenarios) in contexts() {
        for s in scenarios {
            let (optimized, stats) = optimize(&s.program);
            let plain = run(&s.program, &ctx, cfg(), &NoSink).unwrap().items();
            let opt = run(&optimized, &ctx, cfg(), &NoSink).unwrap().items();
            assert_eq!(plain, opt, "{}: optimizer changed the result", s.name);
            let _ = stats;

            // Backtraced provenance agrees per (source, index) set, even
            // though operator ids are renumbered.
            let collect = |program: &pebble::dataflow::Program| {
                let run = run_captured(program, &ctx, cfg()).unwrap();
                let b = s.query.match_rows(&run.output.rows);
                let mut traced: Vec<(String, Vec<usize>)> = backtrace(&run, b)
                    .unwrap()
                    .into_iter()
                    .map(|sp| {
                        let mut idx: Vec<usize> = sp.entries.iter().map(|e| e.index).collect();
                        idx.sort_unstable();
                        (sp.source, idx)
                    })
                    .collect();
                traced.sort();
                // Merge multiple reads of the same source.
                let mut merged: Vec<(String, Vec<usize>)> = Vec::new();
                for (src, idx) in traced {
                    match merged.iter_mut().find(|(s, _)| *s == src) {
                        Some((_, all)) => {
                            all.extend(idx);
                            all.sort_unstable();
                            all.dedup();
                        }
                        None => merged.push((src, idx)),
                    }
                }
                merged
            };
            assert_eq!(
                collect(&s.program),
                collect(&optimized),
                "{}: optimizer changed the provenance",
                s.name
            );
        }
    }
}

#[test]
fn prefilter_matches_agree_on_scenarios() {
    for (ctx, scenarios) in contexts() {
        for s in scenarios {
            let run = run_captured(&s.program, &ctx, cfg()).unwrap();
            let schema = run.output.schema().clone();
            let plain = s.query.match_rows(&run.output.rows);
            let pre = s.query.match_rows_prefiltered(&run.output.rows, &schema);
            let a: Vec<u64> = plain.entries.iter().map(|(id, _)| *id).collect();
            let b: Vec<u64> = pre.entries.iter().map(|(id, _)| *id).collect();
            assert_eq!(a, b, "{}: prefilter changed matches", s.name);
        }
    }
}
